#include "server/continuous_session_pool.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <unordered_set>
#include <utility>

#include "core/algorithm.h"
#include "util/stopwatch.h"

namespace rcloak::server {

using core::ContinuousPolicy;

namespace {

// Spill envelope: the pool-level session fields around the policy blob.
// v2 (the cold tier) binds every blob to the map and algorithm it was cut
// under — spill files persist across runs, so a version byte alone is not
// enough to trust a record. v3 adds the owner principal token right after
// the algorithm byte, so adopting a spilled session requires the same
// principal that spilled it; v2 records still decode, as "unowned".
//
//   u8 version | u64le map fingerprint | u8 algorithm |
//   [v3: u64le owner token] |
//   varint blob size | policy blob | u64le clock bits | varint segment
constexpr std::uint8_t kSpillEnvelopeVersion = 3;
constexpr std::uint8_t kSpillEnvelopeVersionV2 = 2;

// Upper bound on records per writer-thread group append: keeps one drain
// cycle's write (and the cold_mutex_ shared hold around it) bounded while
// the queue refills behind it.
constexpr std::size_t kWriterGroupMax = 1024;

Bytes EncodeSpillEnvelope(const Bytes& policy_blob, double last_update_s,
                          roadnet::SegmentId last_segment,
                          std::uint64_t map_fingerprint,
                          core::Algorithm algorithm, std::uint64_t owner) {
  Bytes out;
  out.push_back(kSpillEnvelopeVersion);
  PutU64le(out, map_fingerprint);
  out.push_back(static_cast<std::uint8_t>(algorithm));
  PutU64le(out, owner);
  PutVarint(out, policy_blob.size());
  out.insert(out.end(), policy_blob.begin(), policy_blob.end());
  PutU64le(out, std::bit_cast<std::uint64_t>(last_update_s));
  PutVarint(out, roadnet::Index(last_segment));
  return out;
}

struct SpillEnvelope {
  std::uint64_t map_fingerprint = 0;
  std::uint8_t algorithm = 0;
  std::uint64_t owner = 0;  // 0 = unowned (every v2 record)
  Bytes policy_blob;
  double last_update_s = 0.0;
  roadnet::SegmentId last_segment = roadnet::kInvalidSegment;
};

StatusOr<SpillEnvelope> DecodeSpillEnvelope(const Bytes& data) {
  SpillEnvelope envelope;
  std::size_t offset = 0;
  if (data.empty() || (data[0] != kSpillEnvelopeVersion &&
                       data[0] != kSpillEnvelopeVersionV2)) {
    return Status::InvalidArgument(
        "spilled session: unsupported envelope version");
  }
  const std::uint8_t version = data[offset++];
  const auto fingerprint = GetU64le(data, &offset);
  if (!fingerprint || offset >= data.size()) {
    return Status::DataLoss("spilled session truncated");
  }
  envelope.map_fingerprint = *fingerprint;
  envelope.algorithm = data[offset++];
  if (version >= kSpillEnvelopeVersion) {
    const auto owner = GetU64le(data, &offset);
    if (!owner) return Status::DataLoss("spilled session truncated");
    envelope.owner = *owner;
  }
  const auto blob_size = GetVarint(data, &offset);
  // Subtract-side compare: a hostile length near 2^64 must not wrap.
  if (!blob_size || *blob_size > data.size() - offset) {
    return Status::DataLoss("spilled session truncated");
  }
  envelope.policy_blob.assign(
      data.begin() + static_cast<std::ptrdiff_t>(offset),
      data.begin() + static_cast<std::ptrdiff_t>(offset + *blob_size));
  offset += *blob_size;
  const auto clock_bits = GetU64le(data, &offset);
  const auto segment = GetVarint(data, &offset);
  if (!clock_bits || !segment) {
    return Status::DataLoss("spilled session truncated");
  }
  envelope.last_update_s = std::bit_cast<double>(*clock_bits);
  envelope.last_segment =
      roadnet::SegmentId{static_cast<std::uint32_t>(*segment)};
  return envelope;
}

// Owner-token prefix read: version | fingerprint | algorithm | owner is a
// fixed-width header, so ownership checks on spilled records never parse
// (or copy) the policy blob.
StatusOr<std::uint64_t> DecodeSpillOwner(const Bytes& data) {
  std::size_t offset = 0;
  if (data.empty() || (data[0] != kSpillEnvelopeVersion &&
                       data[0] != kSpillEnvelopeVersionV2)) {
    return Status::InvalidArgument(
        "spilled session: unsupported envelope version");
  }
  const std::uint8_t version = data[offset++];
  if (version < kSpillEnvelopeVersion) return std::uint64_t{0};
  offset += 8 + 1;  // fingerprint + algorithm
  const auto owner = GetU64le(data, &offset);
  if (!owner) return Status::DataLoss("spilled session truncated");
  return *owner;
}

}  // namespace

ContinuousSessionPool::ContinuousSessionPool(AnonymizationServer& server,
                                             const SessionPoolOptions& options)
    : server_(&server),
      deanonymizer_(server.engine().context()),
      options_(options),
      map_fingerprint_(server.engine().context()->fingerprint()) {
  const int shards =
      options.num_shards > 0 ? options.num_shards : server.num_workers();
  const std::size_t segments = server.engine().network().segment_count();
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->occupancy.assign(segments, 0);
  }
  memory_budget_bytes_.store(options.memory_budget_bytes,
                             std::memory_order_relaxed);
}

ContinuousSessionPool::~ContinuousSessionPool() { StopSpillWriter(); }

std::size_t ContinuousSessionPool::SessionFootprint(const Session& session) {
  // The policy's own estimate plus provider storage; the Session struct
  // itself is counted once more through the shard table's slot array —
  // intentionally conservative, the sweep must start early, never late.
  return session.policy.MemoryFootprint() + sizeof(KeyProvider);
}

StatusOr<util::UserId> ContinuousSessionPool::TrackPolicy(
    core::ContinuousPolicy policy, KeyProvider key_provider, double now_s,
    roadnet::SegmentId last_segment, bool restored, std::uint64_t owner) {
  const util::UserId id = interner_.Intern(policy.user_id());
  Shard& shard = *shards_[ShardIndexFor(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto [session, inserted] = shard.sessions.TryEmplace(
      id, Session(std::move(policy), std::move(key_provider)));
  if (!inserted) {
    return Status::FailedPrecondition("track: user already tracked: " +
                                      interner_.NameCopyOf(id));
  }
  session->owner = owner;
  // Registration counts as activity: EvictIdle must not reap a session
  // that was tracked late in simulation time but never updated yet.
  session->last_update_s = now_s;
  session->last_segment = last_segment;
  session->referenced = true;
  session->mem_bytes = SessionFootprint(*session);
  shard.resident_bytes += session->mem_bytes;
  shard.OccupancyAdd(last_segment);
  if (restored) ++shard.restored;
  // A fresh insert supersedes any cold-tier copy of this user — the file
  // record AND the envelope still sitting on the writer queue.
  shard.parked_keys.Erase(id);
  if (spill_ != nullptr) {
    if (options_.async_spill) InvalidateInFlight(id);
    spill_->Erase(id);
  }
  return id;
}

StatusOr<util::UserId> ContinuousSessionPool::Track(
    std::string_view user_id, core::PrivacyProfile profile,
    core::Algorithm algorithm, KeyProvider key_provider,
    const core::ContinuousOptions& options, double now_s,
    std::uint64_t owner) {
  RCLOAK_RETURN_IF_ERROR(profile.Validate());
  if (!key_provider) {
    return Status::InvalidArgument("track: key provider must be callable");
  }
  ContinuousPolicy policy(std::string(user_id), std::move(profile), algorithm,
                          options);
  std::shared_lock<std::shared_mutex> cold(cold_mutex_);
  auto tracked = TrackPolicy(std::move(policy), std::move(key_provider),
                             now_s, roadnet::kInvalidSegment,
                             /*restored=*/false, owner);
  // A track flood can pass the budget without a single update.
  if (tracked.ok()) MaybeSweep();
  return tracked;
}

StatusOr<util::UserId> ContinuousSessionPool::UserIdOf(
    std::string_view user_id) const {
  std::shared_lock<std::shared_mutex> cold(cold_mutex_);
  const util::UserId id = interner_.Find(user_id);
  if (!id.valid()) {
    return Status::NotFound("untracked user: " + std::string(user_id));
  }
  return id;
}

bool ContinuousSessionPool::Evict(std::string_view user_id) {
  std::shared_lock<std::shared_mutex> cold(cold_mutex_);
  const util::UserId id = interner_.Find(user_id);
  if (!id.valid()) return false;
  Shard& shard = *shards_[ShardIndexFor(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  Session* session = shard.sessions.Find(id);
  if (session == nullptr) return false;
  shard.RetireSession(*session);
  shard.OccupancyRemove(session->last_segment);
  shard.resident_bytes -= session->mem_bytes;
  shard.sessions.Erase(id);
  ++shard.evicted;
  return true;
}

std::size_t ContinuousSessionPool::EvictIdle(double now_s, double idle_s) {
  std::shared_lock<std::shared_mutex> cold(cold_mutex_);
  std::size_t evicted = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    evicted += shard->sessions.EraseIf(
        [&](util::UserId, Session& session) {
          if (now_s - session.last_update_s <= idle_s) return false;
          shard->RetireSession(session);
          shard->OccupancyRemove(session.last_segment);
          shard->resident_bytes -= session.mem_bytes;
          ++shard->evicted;
          ++shard->evicted_idle;
          return true;
        });
  }
  return evicted;
}

StatusOr<ContinuousSessionPool::SpilledSession> ContinuousSessionPool::Spill(
    std::string_view user_id) {
  std::shared_lock<std::shared_mutex> cold(cold_mutex_);
  const util::UserId id = interner_.Find(user_id);
  if (!id.valid()) {
    return Status::NotFound("untracked user: " + std::string(user_id));
  }
  Shard& shard = *shards_[ShardIndexFor(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  Session* session = shard.sessions.Find(id);
  if (session == nullptr) {
    return Status::NotFound("untracked user: " + std::string(user_id));
  }
  SpilledSession spilled;
  spilled.user_id = std::string(user_id);
  spilled.state = EncodeSpillEnvelope(
      session->policy.Serialize(), session->last_update_s,
      session->last_segment, map_fingerprint_, session->policy.algorithm(),
      session->owner);
  shard.OccupancyRemove(session->last_segment);
  shard.resident_bytes -= session->mem_bytes;
  shard.sessions.Erase(id);
  ++shard.spilled;
  return spilled;
}

std::vector<ContinuousSessionPool::SpilledSession>
ContinuousSessionPool::EvictIdleSpill(double now_s, double idle_s) {
  std::shared_lock<std::shared_mutex> cold(cold_mutex_);
  std::vector<SpilledSession> spilled;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->sessions.EraseIf([&](util::UserId id, Session& session) {
      if (now_s - session.last_update_s <= idle_s) return false;
      SpilledSession out;
      out.user_id = interner_.NameCopyOf(id);
      out.state = EncodeSpillEnvelope(
          session.policy.Serialize(), session.last_update_s,
          session.last_segment, map_fingerprint_, session.policy.algorithm(),
          session.owner);
      spilled.push_back(std::move(out));
      shard->OccupancyRemove(session.last_segment);
      shard->resident_bytes -= session.mem_bytes;
      ++shard->spilled;
      return true;
    });
  }
  return spilled;
}

Status ContinuousSessionPool::ValidateEnvelopeHeader(
    std::uint64_t map_fingerprint, std::uint8_t algorithm) const {
  if (map_fingerprint != map_fingerprint_) {
    return Status::InvalidArgument(
        "restore: map fingerprint mismatch (the blob was cloaked on a "
        "different road network)");
  }
  if (core::FindAlgorithm(static_cast<core::Algorithm>(algorithm)) ==
      nullptr) {
    return Status::InvalidArgument(
        "restore: unknown algorithm id in spilled session");
  }
  return Status::Ok();
}

StatusOr<util::UserId> ContinuousSessionPool::Restore(
    const SpilledSession& spilled, KeyProvider key_provider) {
  if (!key_provider) {
    return Status::InvalidArgument("restore: key provider must be callable");
  }
  std::shared_lock<std::shared_mutex> cold(cold_mutex_);
  RCLOAK_ASSIGN_OR_RETURN(SpillEnvelope envelope,
                          DecodeSpillEnvelope(spilled.state));
  // Context checks come BEFORE the deserialize: a blob from another map or
  // an unregistered algorithm must not be parsed blind.
  RCLOAK_RETURN_IF_ERROR(ValidateEnvelopeHeader(envelope.map_fingerprint,
                                                envelope.algorithm));
  RCLOAK_ASSIGN_OR_RETURN(
      ContinuousPolicy policy,
      ContinuousPolicy::Deserialize(envelope.policy_blob,
                                    server_->engine().network()));
  if (static_cast<std::uint8_t>(policy.algorithm()) != envelope.algorithm) {
    return Status::InvalidArgument(
        "restore: envelope and policy disagree on the algorithm id");
  }
  return TrackPolicy(std::move(policy), std::move(key_provider),
                     envelope.last_update_s, envelope.last_segment,
                     /*restored=*/true, envelope.owner);
}

// ---- cold tier ------------------------------------------------------------

Status ContinuousSessionPool::AttachSpillFile(const std::string& path) {
  std::unique_lock<std::shared_mutex> cold(cold_mutex_);
  if (spill_ != nullptr) {
    return Status::FailedPrecondition("spill file already attached");
  }
  const std::size_t members =
      options_.spill_shards > 0
          ? static_cast<std::size_t>(options_.spill_shards)
          : std::size_t{1};
  auto files =
      store::SpillFileSet::Attach(path, members, map_fingerprint_, interner_);
  if (!files.ok()) return files.status();
  spill_ = std::move(*files);
  if (options_.async_spill) StartSpillWriter();
  return Status::Ok();
}

ContinuousSessionPool::UserState ContinuousSessionPool::StateOf(
    util::UserId user) const {
  if (!user.valid()) return UserState::kUntracked;
  const Shard& shard = *shards_[ShardIndexFor(user)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.sessions.Find(user) != nullptr) return UserState::kResident;
  }
  // The in-flight queue counts as spilled: a victim unlinked by the async
  // sweep is findable before its write lands (the net front door's
  // adoption check rides on this).
  if (options_.async_spill && InFlightContains(user)) {
    return UserState::kSpilled;
  }
  if (spill_ != nullptr && spill_->Contains(user)) return UserState::kSpilled;
  return UserState::kUntracked;
}

StatusOr<ContinuousSessionPool::UserState> ContinuousSessionPool::StateOf(
    util::UserId user, std::uint64_t principal) const {
  if (!user.valid()) return UserState::kUntracked;
  std::shared_lock<std::shared_mutex> cold(cold_mutex_);
  const Shard& shard = *shards_[ShardIndexFor(user)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (const Session* session = shard.sessions.Find(user)) {
      if (session->owner != 0 && session->owner != principal) {
        return Status::PermissionDenied(
            "user is owned by a different principal");
      }
      return UserState::kResident;
    }
  }
  // Same lookup order as restore-on-miss: the in-flight queue holds the
  // freshest envelope for a victim whose write has not landed yet.
  Bytes state;
  if (options_.async_spill && LookupInFlight(user, &state)) {
    RCLOAK_ASSIGN_OR_RETURN(const std::uint64_t owner,
                            DecodeSpillOwner(state));
    if (owner != 0 && owner != principal) {
      return Status::PermissionDenied(
          "user is owned by a different principal");
    }
    return UserState::kSpilled;
  }
  if (spill_ != nullptr) {
    auto blob = spill_->ReadRecord(user);
    if (blob.ok()) {
      RCLOAK_ASSIGN_OR_RETURN(const std::uint64_t owner,
                              DecodeSpillOwner(*blob));
      if (owner != 0 && owner != principal) {
        return Status::PermissionDenied(
            "user is owned by a different principal");
      }
      return UserState::kSpilled;
    }
    if (blob.status().code() != ErrorCode::kNotFound) return blob.status();
  }
  return UserState::kUntracked;
}

ContinuousSessionPool::RestoreOutcome ContinuousSessionPool::RestoreFromSpill(
    util::UserId user, bool count_on_miss, std::uint64_t principal,
    bool enforce_owner) {
  if (spill_ == nullptr) return RestoreOutcome::kMiss;
  Shard& shard = *shards_[ShardIndexFor(user)];
  Stopwatch timer;
  // In-flight queue first: a victim the async sweep unlinked restores
  // from the very bytes the writer would land — served from memory,
  // byte-identical to the disk round trip.
  Bytes state;
  bool from_queue =
      options_.async_spill && LookupInFlight(user, &state);
  if (!from_queue) {
    auto blob = spill_->ReadRecord(user);
    if (!blob.ok()) {
      if (blob.status().code() != ErrorCode::kNotFound) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        ++shard.restore_failures;
      }
      return RestoreOutcome::kMiss;
    }
    state = std::move(*blob);
  }
  double last_update_s = 0.0;
  roadnet::SegmentId last_segment = roadnet::kInvalidSegment;
  std::uint64_t owner = 0;
  auto restore = [&]() -> StatusOr<ContinuousPolicy> {
    RCLOAK_ASSIGN_OR_RETURN(SpillEnvelope envelope,
                            DecodeSpillEnvelope(state));
    RCLOAK_RETURN_IF_ERROR(ValidateEnvelopeHeader(envelope.map_fingerprint,
                                                  envelope.algorithm));
    RCLOAK_ASSIGN_OR_RETURN(
        ContinuousPolicy policy,
        ContinuousPolicy::Deserialize(envelope.policy_blob,
                                      server_->engine().network()));
    last_update_s = envelope.last_update_s;
    last_segment = envelope.last_segment;
    owner = envelope.owner;
    return policy;
  };
  StatusOr<ContinuousPolicy> policy = restore();
  if (!policy.ok()) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.restore_failures;
    return RestoreOutcome::kMiss;
  }
  // Ownership gate: an envelope carrying a different principal's owner is
  // never adopted into this caller's batch — the spilled state stays put
  // (v2 envelopes decode as owner 0 = unowned, so pre-auth spill files
  // restore for everyone, matching their open-mode provenance).
  if (enforce_owner && owner != 0 && owner != principal) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.ownership_rejected;
    return RestoreOutcome::kDenied;
  }
  // Key source: the provider parked at budget-spill time, else the
  // configured factory (the only option for files attached cross-run).
  KeyProvider provider;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (KeyProvider* parked = shard.parked_keys.Find(user)) {
      provider = std::move(*parked);
      shard.parked_keys.Erase(user);
    }
  }
  if (!provider && options_.key_provider_factory) {
    provider = options_.key_provider_factory(interner_.NameCopyOf(user));
  }
  if (!provider) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.restore_failures;
    return RestoreOutcome::kMiss;
  }
  auto tracked = TrackPolicy(std::move(*policy), std::move(provider),
                             last_update_s, last_segment,
                             /*restored=*/true, owner);
  if (!tracked.ok()) {
    // FailedPrecondition = the user raced back in already: resident is
    // resident, the caller proceeds.
    return tracked.status().code() == ErrorCode::kFailedPrecondition
               ? RestoreOutcome::kRestored
               : RestoreOutcome::kMiss;
  }
  if (count_on_miss) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.restored_on_miss;
  }
  if (from_queue) {
    restored_in_flight_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    restore_latency_ms_.Add(timer.ElapsedMillis());
  }
  return RestoreOutcome::kRestored;
}

std::size_t ContinuousSessionPool::SweepStep(std::size_t quota) {
  const std::size_t shard_index =
      sweep_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  Shard& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (options_.async_spill) {
    // Unlink-and-enqueue: the serialized envelope goes on the in-flight
    // queue (inserted before the shard unlink becomes visible, so the
    // user is always resident or findable) and the victim leaves the
    // resident table immediately — no disk write under the shard lock.
    // The writer thread lands the bytes; restore-on-miss serves them from
    // memory until then.
    return shard.sessions.SweepFrom(
        &shard.clock_hand, quota, [&](util::UserId id, Session& session) {
          if (session.referenced) {
            session.referenced = false;
            return false;
          }
          EnqueueSpill(id,
                       EncodeSpillEnvelope(session.policy.Serialize(),
                                           session.last_update_s,
                                           session.last_segment,
                                           map_fingerprint_,
                                           session.policy.algorithm(),
                                           session.owner));
          if (!options_.key_provider_factory) {
            shard.parked_keys.TryEmplace(id,
                                         std::move(session.key_provider));
          }
          shard.OccupancyRemove(session.last_segment);
          shard.resident_bytes -= session.mem_bytes;
          ++shard.spilled;
          ++shard.budget_spilled;
          return true;  // erased in place by SweepFrom
        });
  }
  std::vector<store::SpillFileSet::Record> batch;
  std::vector<util::UserId> victims;
  const std::size_t visited = shard.sessions.SweepFrom(
      &shard.clock_hand, quota, [&](util::UserId id, Session& session) {
        if (session.referenced) {
          // Second chance: touched since the last lap.
          session.referenced = false;
          return false;
        }
        batch.push_back(store::SpillFileSet::Record{
            id, EncodeSpillEnvelope(session.policy.Serialize(),
                                    session.last_update_s,
                                    session.last_segment, map_fingerprint_,
                                    session.policy.algorithm(),
                                    session.owner)});
        victims.push_back(id);
        return false;  // erased below, only once the append landed
      });
  if (!victims.empty() && spill_->AppendBatch(batch).ok()) {
    for (const util::UserId id : victims) {
      Session* session = shard.sessions.Find(id);
      if (session == nullptr) continue;
      if (!options_.key_provider_factory) {
        shard.parked_keys.TryEmplace(id, std::move(session->key_provider));
      }
      shard.OccupancyRemove(session->last_segment);
      shard.resident_bytes -= session->mem_bytes;
      shard.sessions.Erase(id);
      ++shard.spilled;
      ++shard.budget_spilled;
    }
  }
  // On append failure the sessions simply stay resident; the budget stays
  // exceeded and the next sweep retries.
  return visited;
}

void ContinuousSessionPool::MaybeSweep() {
  if (spill_ == nullptr) return;
  const std::size_t budget =
      memory_budget_bytes_.load(std::memory_order_relaxed);
  if (budget == 0 || memory_bytes() <= budget) return;
  sweeps_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t quota = options_.sweep_batch > 0 ? options_.sweep_batch
                                                     : std::size_t{256};
  // Two laps over the clock at most: lap one clears referenced bits, lap
  // two spills. If the resident floor (everything touched this tick) still
  // exceeds the budget after that, yield to the next batch.
  std::size_t allowance = 2 * (session_count() + shards_.size());
  while (allowance > 0 && memory_bytes() > budget) {
    // Async mode: a saturated in-flight queue means the disk is behind.
    // Yield rather than block the update path — the budget stays
    // exceeded and the next batch retries once the writer drains.
    if (options_.async_spill && SweepStalledOnQueue()) break;
    const std::size_t visited = SweepStep(quota);
    allowance -= std::min(allowance, std::max<std::size_t>(visited, 1));
  }
}

bool ContinuousSessionPool::CompactionDue() const {
  if (spill_ == nullptr) return false;
  const store::SpillFileStats stats = spill_->stats();
  if (stats.file_bytes < options_.spill_compact_min_bytes) return false;
  return static_cast<double>(stats.dead_bytes) >
         options_.spill_compact_dead_fraction *
             static_cast<double>(stats.file_bytes);
}

void ContinuousSessionPool::MaybeCompactColdTier() {
  if (!CompactionDue()) return;
  std::unique_lock<std::shared_mutex> cold(cold_mutex_);
  if (!CompactionDue()) return;  // raced: someone else compacted
  // Failure leaves the dead bytes in place; retried after the next sweep.
  (void)CompactColdTierLocked();
}

Status ContinuousSessionPool::CompactColdTierLocked() {
  // Generation protocol: open a fresh generation, move every name that
  // must survive into it (resident sessions, parked providers, queued
  // in-flight spills, live spill records as compaction sees them), then
  // retire everything older — churned users' names are the only thing
  // left behind.
  const std::uint32_t fresh = interner_.BeginGeneration();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->sessions.ForEach(
        [&](util::UserId id, Session&) { interner_.Touch(id); });
    shard->parked_keys.ForEach(
        [&](util::UserId id, KeyProvider&) { interner_.Touch(id); });
  }
  {
    // In-flight victims are in no shard and not yet in any file; their
    // names must survive or the writer's deferred append could not
    // resolve them. Stable under cold unique: every producer holds
    // cold_mutex_ shared to enqueue.
    std::lock_guard<std::mutex> lock(queue_mutex_);
    in_flight_.ForEach(
        [&](util::UserId id, InFlightSpill&) { interner_.Touch(id); });
  }
  RCLOAK_RETURN_IF_ERROR(spill_->Compact());
  for (const util::UserId user : spill_->LiveUsers()) interner_.Touch(user);
  interner_.RetireGenerationsBefore(fresh);
  spill_compactions_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status ContinuousSessionPool::CompactColdTierOffPath() {
  // Phase 1 — the long part, WITHOUT the cold lock: rewrite members
  // carrying dead bytes. Only appends/restores routed to the member being
  // rewritten block (on its own mutex); the update path keeps running.
  // Records appended to a member after its rewrite land behind the new
  // tail and stay indexed, so nothing is lost to the race.
  RCLOAK_RETURN_IF_ERROR(spill_->Compact());
  // Phase 2 — the short part, under cold unique: generation retirement.
  // Touch everything live (resident, parked, in-flight, on disk as of
  // now — a superset of what phase 1 saw), then retire the rest. Any name
  // interned before this lock is live somewhere or legitimately retirable.
  std::unique_lock<std::shared_mutex> cold(cold_mutex_);
  const std::uint32_t fresh = interner_.BeginGeneration();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->sessions.ForEach(
        [&](util::UserId id, Session&) { interner_.Touch(id); });
    shard->parked_keys.ForEach(
        [&](util::UserId id, KeyProvider&) { interner_.Touch(id); });
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    in_flight_.ForEach(
        [&](util::UserId id, InFlightSpill&) { interner_.Touch(id); });
  }
  for (const util::UserId user : spill_->LiveUsers()) interner_.Touch(user);
  interner_.RetireGenerationsBefore(fresh);
  spill_compactions_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status ContinuousSessionPool::CompactColdTier() {
  if (spill_ == nullptr) {
    return Status::FailedPrecondition("no spill file attached");
  }
  std::unique_lock<std::shared_mutex> cold(cold_mutex_);
  return CompactColdTierLocked();
}

StatusOr<std::size_t> ContinuousSessionPool::SpillAllToFile() {
  if (spill_ == nullptr) {
    return Status::FailedPrecondition("no spill file attached");
  }
  // Async mode: land the queued envelopes first so the file carries every
  // spilled user, not just the residents written below.
  if (options_.async_spill) RCLOAK_RETURN_IF_ERROR(FlushSpillQueue());
  std::shared_lock<std::shared_mutex> cold(cold_mutex_);
  std::size_t written = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    std::vector<store::SpillFileSet::Record> batch;
    std::vector<util::UserId> victims;
    shard.sessions.ForEach([&](util::UserId id, Session& session) {
      batch.push_back(store::SpillFileSet::Record{
          id, EncodeSpillEnvelope(session.policy.Serialize(),
                                  session.last_update_s, session.last_segment,
                                  map_fingerprint_,
                                  session.policy.algorithm(),
                                  session.owner)});
      victims.push_back(id);
    });
    if (batch.empty()) continue;
    RCLOAK_RETURN_IF_ERROR(spill_->AppendBatch(batch));
    for (const util::UserId id : victims) {
      Session* session = shard.sessions.Find(id);
      if (session == nullptr) continue;
      if (!options_.key_provider_factory) {
        shard.parked_keys.TryEmplace(id, std::move(session->key_provider));
      }
      shard.OccupancyRemove(session->last_segment);
      shard.resident_bytes -= session->mem_bytes;
      shard.sessions.Erase(id);
      ++shard.spilled;
    }
    written += victims.size();
  }
  return written;
}

StatusOr<std::size_t> ContinuousSessionPool::RestoreAllFromFile() {
  if (spill_ == nullptr) {
    return Status::FailedPrecondition("no spill file attached");
  }
  // Async mode: queued victims are not in the file's live set yet — flush
  // so the LiveUsers walk below sees them.
  if (options_.async_spill) RCLOAK_RETURN_IF_ERROR(FlushSpillQueue());
  std::shared_lock<std::shared_mutex> cold(cold_mutex_);
  std::size_t restored = 0;
  for (const util::UserId user : spill_->LiveUsers()) {
    // Warm-boot tooling restores every record regardless of owner (the
    // envelope's owner survives onto the session, so the ownership gate
    // still holds for subsequent updates).
    if (RestoreFromSpill(user, /*count_on_miss=*/false, /*principal=*/0,
                         /*enforce_owner=*/false) ==
        RestoreOutcome::kRestored) {
      ++restored;
    }
  }
  return restored;
}

StatusOr<std::size_t> ContinuousSessionPool::OwnedSpillRecords() const {
  if (spill_ == nullptr) {
    return Status::FailedPrecondition("no spill file attached");
  }
  std::shared_lock<std::shared_mutex> cold(cold_mutex_);
  std::size_t owned = 0;
  for (const util::UserId user : spill_->LiveUsers()) {
    auto blob = spill_->ReadRecord(user);
    if (!blob.ok()) {
      if (blob.status().code() == ErrorCode::kNotFound) continue;
      return blob.status();
    }
    RCLOAK_ASSIGN_OR_RETURN(const std::uint64_t owner,
                            DecodeSpillOwner(*blob));
    if (owner != 0) ++owned;
  }
  return owned;
}

// ---- async spill pipeline --------------------------------------------------

void ContinuousSessionPool::EnqueueSpill(util::UserId user, Bytes state) {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  const std::uint64_t seq = ++queue_seq_;
  const std::size_t size = state.size();
  auto [slot, inserted] = in_flight_.TryEmplace(user, InFlightSpill{});
  if (!inserted) {
    // A fresher spill supersedes the queued envelope; the older write is
    // absorbed in memory (its deque entry dies by seq mismatch).
    queue_bytes_ -= std::min(queue_bytes_, slot->state.size());
    ++async_absorbed_;
  }
  slot->state = std::move(state);
  slot->seq = seq;
  queue_bytes_ += size;
  spill_queue_.push_back({user, seq});
  queue_peak_ = std::max(queue_peak_, spill_queue_.size());
  queue_cv_.notify_all();
}

bool ContinuousSessionPool::LookupInFlight(util::UserId user,
                                           Bytes* state) const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  const InFlightSpill* slot = in_flight_.Find(user);
  if (slot == nullptr) return false;
  *state = slot->state;
  return true;
}

bool ContinuousSessionPool::InFlightContains(util::UserId user) const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return in_flight_.Find(user) != nullptr;
}

void ContinuousSessionPool::InvalidateInFlight(util::UserId user) {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  InFlightSpill* slot = in_flight_.Find(user);
  if (slot == nullptr) return;
  queue_bytes_ -= std::min(queue_bytes_, slot->state.size());
  ++async_absorbed_;
  in_flight_.Erase(user);
  queue_cv_.notify_all();  // a flush waiting on this entry can finish
}

bool ContinuousSessionPool::SweepStalledOnQueue() {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  if (spill_queue_.size() < options_.spill_queue_max_records &&
      queue_bytes_ < options_.spill_queue_max_bytes) {
    return false;
  }
  ++write_stalls_;
  queue_cv_.notify_all();  // kick the writer
  return true;
}

void ContinuousSessionPool::StartSpillWriter() {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  if (writer_running_) return;
  writer_running_ = true;
  spill_writer_ = std::thread([this] { SpillWriterLoop(); });
}

void ContinuousSessionPool::StopSpillWriter() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!writer_running_) return;
    writer_running_ = false;
    queue_cv_.notify_all();
  }
  if (spill_writer_.joinable()) spill_writer_.join();
}

Status ContinuousSessionPool::FlushSpillQueue() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  if (!writer_running_) {
    return spill_queue_.empty()
               ? Status::Ok()
               : Status::FailedPrecondition("spill writer not running");
  }
  ++flush_waiters_;  // overrides a test pause for the duration of the wait
  queue_cv_.notify_all();
  queue_cv_.wait(lock, [&] {
    return (spill_queue_.empty() && in_flight_.empty()) ||
           !writer_status_.ok() || !writer_running_;
  });
  --flush_waiters_;
  return writer_status_;
}

void ContinuousSessionPool::PauseSpillWriterForTest(bool paused) {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  writer_paused_ = paused;
  queue_cv_.notify_all();
}

void ContinuousSessionPool::SpillWriterLoop() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  for (;;) {
    // Timed wait: dead bytes can grow without queue traffic (re-tracks
    // erasing file records), and compaction is the writer's job here.
    queue_cv_.wait_for(lock, std::chrono::milliseconds(250), [&] {
      return !writer_running_ ||
             ((!writer_paused_ || flush_waiters_ > 0) &&
              !spill_queue_.empty());
    });
    const bool shutting_down = !writer_running_;
    if (spill_queue_.empty()) {
      if (shutting_down) return;  // final drain done (flush on Detach)
      if (!writer_paused_ && CompactionDue()) {
        lock.unlock();
        // Failure leaves the dead bytes; retried on a later cycle.
        (void)CompactColdTierOffPath();
        lock.lock();
      }
      continue;
    }
    // Shutdown overrides the pause; so does a flush waiter.
    if (writer_paused_ && flush_waiters_ == 0 && !shutting_down) continue;

    // Pop one group, keeping FIFO order (last-write-wins on disk needs
    // appends in enqueue order), and copy out the still-valid states.
    // Entries whose seq no longer matches were superseded or invalidated
    // — their writes are absorbed. The in_flight_ slots stay until the
    // append lands so concurrent restores keep being served from memory.
    const std::size_t take = std::min(spill_queue_.size(), kWriterGroupMax);
    std::vector<SpillQueueEntry> popped(
        spill_queue_.begin(),
        spill_queue_.begin() + static_cast<std::ptrdiff_t>(take));
    spill_queue_.erase(
        spill_queue_.begin(),
        spill_queue_.begin() + static_cast<std::ptrdiff_t>(take));
    std::vector<store::SpillFileSet::Record> batch;
    std::vector<SpillQueueEntry> valid;
    batch.reserve(popped.size());
    valid.reserve(popped.size());
    for (const SpillQueueEntry& entry : popped) {
      const InFlightSpill* slot = in_flight_.Find(entry.user);
      if (slot == nullptr || slot->seq != entry.seq) continue;
      batch.push_back({entry.user, slot->state});
      valid.push_back(entry);
    }
    if (batch.empty()) {
      queue_cv_.notify_all();
      continue;
    }
    lock.unlock();
    Status status;
    {
      // Shared like every other spill producer: generation retirement
      // (cold unique) can never overlap an append resolving names.
      std::shared_lock<std::shared_mutex> cold(cold_mutex_);
      status = spill_->AppendBatch(batch);
    }
    lock.lock();
    if (status.ok()) {
      writer_status_ = Status::Ok();
      ++async_appends_;
      async_spilled_ += batch.size();
      for (const SpillQueueEntry& entry : valid) {
        const InFlightSpill* slot = in_flight_.Find(entry.user);
        if (slot != nullptr && slot->seq == entry.seq) {
          queue_bytes_ -= std::min(queue_bytes_, slot->state.size());
          in_flight_.Erase(entry.user);
        }
        // A mismatch = superseded while we wrote: the newer entry stays
        // queued and will supersede this record on disk too.
      }
      queue_cv_.notify_all();
      if (!shutting_down && spill_queue_.empty() && CompactionDue()) {
        lock.unlock();
        (void)CompactColdTierOffPath();
        lock.lock();
      }
    } else {
      writer_status_ = status;
      // Requeue at the FRONT in original order: nothing is dropped, and
      // FIFO (so last-write-wins) is preserved for the retry.
      for (auto it = valid.rbegin(); it != valid.rend(); ++it) {
        spill_queue_.push_front(*it);
      }
      queue_cv_.notify_all();  // flush waiters observe writer_status_
      if (shutting_down) return;  // exiting anyway; the error is recorded
      // Backoff before retrying the disk.
      queue_cv_.wait_for(lock, std::chrono::milliseconds(10),
                         [&] { return !writer_running_; });
    }
  }
}

std::size_t ContinuousSessionPool::memory_bytes() const {
  // std::function storage for a parked provider, approximate.
  constexpr std::size_t kParkedProviderBytes = 64;
  std::size_t total = interner_.memory_bytes();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->resident_bytes;
    total += shard->sessions.memory_bytes();
    total += shard->parked_keys.memory_bytes() +
             shard->parked_keys.size() * kParkedProviderBytes;
    total += shard->occupancy.capacity() * sizeof(std::uint32_t);
  }
  if (spill_ != nullptr) total += spill_->stats().index_bytes;
  return total;
}

// ---- update path ----------------------------------------------------------

void ContinuousSessionPool::RunRound(
    const std::vector<IdPositionUpdate>& updates,
    const std::vector<std::size_t>& round,
    std::vector<StatusOr<SharedArtifact>>& results) {
  // ---- phase 1: classify under the shard locks; no engine work ----------
  std::vector<PendingRecloak> pending;
  std::vector<AnonymizationServer::BatchJob> jobs;
  // Requires the shard lock. Returns true when the engine must cut a
  // fresh artifact for this update.
  const auto classify = [&](Shard& shard, std::size_t shard_index,
                            Session& session, std::size_t idx,
                            const IdPositionUpdate& update,
                            PendingRecloak& recloak,
                            core::AnonymizeRequest& request,
                            KeyProvider& provider) -> bool {
    session.last_update_s = update.now_s;
    session.referenced = true;  // second chance for the next clock lap
    shard.OccupancyRemove(session.last_segment);
    session.last_segment = update.segment;
    shard.OccupancyAdd(update.segment);
    switch (session.policy.OnUpdate(update.now_s, update.segment)) {
      case ContinuousPolicy::Action::kServe:
        ++shard.served_in_region;
        // Refcount bump only — the in-region path allocates nothing.
        results[idx] = session.policy.artifact();
        return false;
      case ContinuousPolicy::Action::kServeStale:
        ++shard.throttled_stale;
        results[idx] = session.policy.artifact();
        return false;
      case ContinuousPolicy::Action::kRecloak:
        recloak.update_index = idx;
        recloak.user = update.user;
        recloak.shard = shard_index;
        recloak.epoch = session.policy.next_epoch();
        recloak.validity_level = session.policy.validity_level();
        recloak.profile = session.policy.profile();
        request.origin = update.segment;
        request.profile = recloak.profile;
        request.algorithm = session.policy.algorithm();
        request.context = session.policy.EpochContext(recloak.epoch);
        // Copied so the user-supplied provider runs OUTSIDE the shard
        // lock: it may be slow (KMS round-trips) or call back into the
        // pool, and either must not stall or deadlock the shard.
        provider = session.key_provider;
        return true;
    }
    return false;
  };
  for (const std::size_t idx : round) {
    const IdPositionUpdate& update = updates[idx];
    const std::size_t shard_index = ShardIndexFor(update.user);
    Shard& shard = *shards_[shard_index];
    PendingRecloak recloak;
    core::AnonymizeRequest request;
    KeyProvider provider;
    bool needs_recloak = false;
    bool missing = false;
    bool denied = false;
    // Ownership gate, under the shard lock with the session in hand: an
    // owned session only moves for its principal; an unowned one is
    // claimed by the first authenticated principal that updates it (the
    // open-mode -> auth-mode migration path). Must return true before
    // classify touches the session.
    const auto owner_guard = [&](Shard& shard_ref, Session& session) {
      if (session.owner != 0 && session.owner != update.principal) {
        ++shard_ref.ownership_rejected;
        results[idx] = Status::PermissionDenied(
            "user is owned by a different principal: " +
            interner_.NameCopyOf(update.user));
        denied = true;
        return false;
      }
      if (session.owner == 0 && update.principal != 0) {
        session.owner = update.principal;
      }
      return true;
    };
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      ++shard.updates;
      Session* session = shard.sessions.Find(update.user);
      if (session == nullptr) {
        missing = true;
      } else if (owner_guard(shard, *session)) {
        needs_recloak = classify(shard, shard_index, *session, idx, update,
                                 recloak, request, provider);
      }
    }
    if (denied) continue;
    if (missing) {
      // The cold-tier fast path: an update for a spilled user reads the
      // record back, deserializes, and proceeds in the SAME batch — no
      // NotFound, byte-identical to a session that never left memory.
      //
      // Retried: while the budget is still exceeded, a concurrent sweep
      // (two clock laps in one MaybeSweep) can clear the fresh session's
      // referenced bit and re-spill it between the restore returning and
      // the shard lock below — the session is live the whole time, just
      // moving, so adopt again. Every round trips the same bytes; any
      // attempt that sticks is byte-identical.
      for (int attempt = 0; attempt < 4 && missing; ++attempt) {
        const RestoreOutcome outcome =
            RestoreFromSpill(update.user, /*count_on_miss=*/attempt == 0,
                             update.principal, /*enforce_owner=*/true);
        if (outcome == RestoreOutcome::kDenied) {
          results[idx] = Status::PermissionDenied(
              "user is owned by a different principal: " +
              interner_.NameCopyOf(update.user));
          denied = true;
          break;
        }
        if (outcome == RestoreOutcome::kMiss) break;
        std::lock_guard<std::mutex> lock(shard.mutex);
        Session* session = shard.sessions.Find(update.user);
        if (session != nullptr) {
          // Re-checked resident: kRestored can mean "raced back in", and
          // the session that won the race may belong to someone else.
          if (owner_guard(shard, *session)) {
            needs_recloak = classify(shard, shard_index, *session, idx,
                                     update, recloak, request, provider);
          }
          missing = false;
        }
      }
      if (denied) continue;
      if (missing) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        ++shard.unknown_user;
        results[idx] = Status::NotFound("untracked user: " +
                                        interner_.NameCopyOf(update.user));
        continue;
      }
    }
    if (!needs_recloak) continue;
    recloak.keys = provider(recloak.epoch);
    jobs.push_back({std::move(request), recloak.keys});
    pending.push_back(std::move(recloak));
  }
  if (pending.empty()) return;

  // ---- phase 2: one server batch for every region exit -------------------
  auto futures = server_->SubmitBatch(std::move(jobs));
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!futures[i].ok()) {
      pending[i].result = futures[i].status();
      continue;
    }
    pending[i].result = futures[i]->get();
  }

  // ---- phase 3: validity regions for the fresh artifacts -----------------
  // The per-epoch granted key maps live here so the reduce jobs can borrow.
  std::vector<std::map<int, crypto::AccessKey>> granted(pending.size());
  std::vector<core::Deanonymizer::ReduceJob> reduce_jobs;
  std::vector<std::size_t> reduce_owner;  // reduce job -> pending index
  for (std::size_t i = 0; i < pending.size(); ++i) {
    PendingRecloak& recloak = pending[i];
    if (!recloak.result.ok()) continue;
    const int num_levels = recloak.profile.num_levels();
    for (int level = recloak.validity_level + 1; level <= num_levels;
         ++level) {
      granted[i].emplace(level, recloak.keys.LevelKey(level));
    }
    reduce_jobs.push_back({&recloak.result->artifact, &granted[i],
                           recloak.validity_level});
    reduce_owner.push_back(i);
  }
  // Large exit rounds fan the audit step across the server workers (per-
  // worker ReduceSession reuse, the calling thread as an extra lane);
  // small ones stay serial — byte-identical either way.
  std::vector<StatusOr<core::CloakRegion>> regions;
  if (options_.min_reduce_fanout > 0 &&
      reduce_jobs.size() >= options_.min_reduce_fanout &&
      server_->num_workers() > 1) {
    regions = server_->ReduceOnWorkers(deanonymizer_, std::move(reduce_jobs));
    reduce_fanouts_.fetch_add(1, std::memory_order_relaxed);
  } else {
    regions = deanonymizer_.ReduceBatch(reduce_jobs);
  }

  // ---- phase 4: commit under the shard locks -----------------------------
  std::vector<StatusOr<core::CloakRegion>*> region_of(pending.size(),
                                                      nullptr);
  for (std::size_t j = 0; j < reduce_owner.size(); ++j) {
    region_of[reduce_owner[j]] = &regions[j];
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    PendingRecloak& recloak = pending[i];
    const std::size_t idx = recloak.update_index;
    Shard& shard = *shards_[recloak.shard];
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (!recloak.result.ok()) {
      ++shard.recloak_failures;
      results[idx] = recloak.result.status();
      continue;
    }
    StatusOr<core::CloakRegion>& region = *region_of[i];
    if (!region.ok()) {
      ++shard.recloak_failures;
      results[idx] = region.status();
      continue;
    }
    // One wrapping shared between the serve result and the committed
    // session state.
    auto artifact = std::make_shared<const core::CloakedArtifact>(
        std::move(recloak.result).value().artifact);
    results[idx] = artifact;
    Session* session = shard.sessions.Find(recloak.user);
    if (session == nullptr) continue;  // evicted in flight
    if (session->policy.next_epoch() != recloak.epoch) continue;  // raced
    shard.resident_bytes -= session->mem_bytes;
    session->policy.CommitRecloak(updates[idx].now_s, std::move(artifact),
                                  std::move(region).value());
    session->mem_bytes = SessionFootprint(*session);
    shard.resident_bytes += session->mem_bytes;
    session->referenced = true;
    ++shard.recloaks;
  }
}

std::vector<StatusOr<ContinuousSessionPool::SharedArtifact>>
ContinuousSessionPool::UpdateBatchImpl(
    const std::vector<IdPositionUpdate>& updates) {
  std::vector<StatusOr<SharedArtifact>> results;
  results.reserve(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    results.emplace_back(Status::Internal("batch update not visited"));
  }
  std::vector<std::size_t> remaining;
  remaining.reserve(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (updates[i].user.valid()) {
      remaining.push_back(i);
      continue;
    }
    // Never-interned handle: there is no id shard to charge, so the
    // boundary charges the first shard.
    Shard& shard = *shards_.front();
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.updates;
    ++shard.unknown_user;
    results[i] = Status::NotFound("untracked user");
  }

  // A round holds at most one update per user, preserving input order, so
  // a user's second update in a batch observes the first one's commit.
  while (!remaining.empty()) {
    std::vector<std::size_t> round;
    std::vector<std::size_t> deferred;
    std::unordered_set<std::uint32_t> users_in_round;
    for (const std::size_t idx : remaining) {
      if (users_in_round.insert(updates[idx].user.value).second) {
        round.push_back(idx);
      } else {
        deferred.push_back(idx);
      }
    }
    Stopwatch timer;
    RunRound(updates, round, results);
    const double per_update_ms =
        round.empty() ? 0.0 : timer.ElapsedMillis() /
                                  static_cast<double>(round.size());
    {
      std::lock_guard<std::mutex> lock(latency_mutex_);
      for (std::size_t i = 0; i < round.size(); ++i) {
        update_latency_ms_.Add(per_update_ms);
      }
    }
    remaining = std::move(deferred);
  }
  return results;
}

std::vector<StatusOr<ContinuousSessionPool::SharedArtifact>>
ContinuousSessionPool::UpdateBatch(
    const std::vector<IdPositionUpdate>& updates) {
  std::vector<StatusOr<SharedArtifact>> results;
  {
    std::shared_lock<std::shared_mutex> cold(cold_mutex_);
    results = UpdateBatchImpl(updates);
    MaybeSweep();
  }
  // Async mode: compaction belongs to the writer thread (off the update
  // path); sync mode keeps the PR 7 behavior for A/B comparison.
  if (!options_.async_spill) MaybeCompactColdTier();
  return results;
}

std::vector<StatusOr<core::CloakedArtifact>>
ContinuousSessionPool::UpdateBatch(const std::vector<PositionUpdate>& updates) {
  // One boundary hash per update; unknown names fail fast below (invalid
  // handles are resolved inside the id batch).
  std::vector<IdPositionUpdate> ids;
  ids.reserve(updates.size());
  std::vector<StatusOr<SharedArtifact>> shared;
  {
    std::shared_lock<std::shared_mutex> cold(cold_mutex_);
    for (const PositionUpdate& update : updates) {
      ids.push_back({interner_.Find(update.user_id), update.now_s,
                     update.segment, update.principal});
    }
    shared = UpdateBatchImpl(ids);
    MaybeSweep();
  }
  if (!options_.async_spill) MaybeCompactColdTier();
  // Compatibility boundary: copy each served artifact out by value.
  std::vector<StatusOr<core::CloakedArtifact>> results;
  results.reserve(shared.size());
  for (std::size_t i = 0; i < shared.size(); ++i) {
    if (!ids[i].user.valid()) {
      results.emplace_back(
          Status::NotFound("untracked user: " + updates[i].user_id));
    } else if (!shared[i].ok()) {
      results.emplace_back(shared[i].status());
    } else {
      results.emplace_back(**shared[i]);
    }
  }
  return results;
}

StatusOr<core::CloakedArtifact> ContinuousSessionPool::Update(
    std::string_view user_id, double now_s, roadnet::SegmentId segment) {
  std::vector<PositionUpdate> one;
  one.push_back({std::string(user_id), now_s, segment});
  auto results = UpdateBatch(one);
  return std::move(results.front());
}

mobility::OccupancySnapshot ContinuousSessionPool::BuildOccupancy() const {
  mobility::OccupancySnapshot occupancy(
      server_->engine().network().segment_count());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    occupancy.AddCounts(shard->occupancy);
  }
  return occupancy;
}

mobility::OccupancySnapshot ContinuousSessionPool::BuildOccupancyRebuild()
    const {
  mobility::OccupancySnapshot occupancy(
      server_->engine().network().segment_count());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->sessions.ForEach([&occupancy](util::UserId,
                                         const Session& session) {
      if (roadnet::Index(session.last_segment) < occupancy.segment_count()) {
        occupancy.Add(session.last_segment);
      }
    });
  }
  return occupancy;
}

StatusOr<std::uint64_t> ContinuousSessionPool::UserEpoch(
    util::UserId user) const {
  if (!user.valid()) return Status::NotFound("untracked user");
  const Shard& shard = *shards_[ShardIndexFor(user)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const Session* session = shard.sessions.Find(user);
  if (session == nullptr) {
    return Status::NotFound("untracked user: " + interner_.NameCopyOf(user));
  }
  return session->policy.epoch();
}

StatusOr<std::uint64_t> ContinuousSessionPool::UserEpoch(
    std::string_view user_id) const {
  std::shared_lock<std::shared_mutex> cold(cold_mutex_);
  const util::UserId id = interner_.Find(user_id);
  if (!id.valid()) {
    return Status::NotFound("untracked user: " + std::string(user_id));
  }
  return UserEpoch(id);
}

StatusOr<core::ContinuousStats> ContinuousSessionPool::UserStats(
    std::string_view user_id) const {
  std::shared_lock<std::shared_mutex> cold(cold_mutex_);
  const util::UserId id = interner_.Find(user_id);
  if (!id.valid()) {
    return Status::NotFound("untracked user: " + std::string(user_id));
  }
  const Shard& shard = *shards_[ShardIndexFor(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const Session* session = shard.sessions.Find(id);
  if (session == nullptr) {
    return Status::NotFound("untracked user: " + std::string(user_id));
  }
  return session->policy.stats();
}

std::size_t ContinuousSessionPool::session_count() const {
  std::size_t count = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    count += shard->sessions.size();
  }
  return count;
}

SessionPoolStats ContinuousSessionPool::stats() const {
  SessionPoolStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.updates += shard->updates;
    stats.served_in_region += shard->served_in_region;
    stats.throttled_stale += shard->throttled_stale;
    stats.recloaks += shard->recloaks;
    stats.recloak_failures += shard->recloak_failures;
    stats.unknown_user += shard->unknown_user;
    stats.evicted += shard->evicted;
    stats.evicted_idle += shard->evicted_idle;
    stats.spilled += shard->spilled;
    stats.restored += shard->restored;
    stats.retired_updates += shard->retired_updates;
    stats.retired_recloaks += shard->retired_recloaks;
    stats.retired_throttled_stale += shard->retired_throttled_stale;
    stats.budget_spilled += shard->budget_spilled;
    stats.restored_on_miss += shard->restored_on_miss;
    stats.restore_failures += shard->restore_failures;
    stats.ownership_rejected += shard->ownership_rejected;
    stats.active_sessions += shard->sessions.size();
  }
  stats.reduce_fanouts = reduce_fanouts_.load(std::memory_order_relaxed);
  stats.sweeps = sweeps_.load(std::memory_order_relaxed);
  stats.spill_compactions =
      spill_compactions_.load(std::memory_order_relaxed);
  stats.memory_bytes = memory_bytes();
  stats.interner_bytes = interner_.memory_bytes();
  if (spill_ != nullptr) {
    const store::SpillFileStats spill = spill_->stats();
    stats.spill_file_bytes = spill.file_bytes;
    stats.spill_dead_bytes = spill.dead_bytes;
    stats.spill_live_records = spill.live_records;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stats.write_stalls = write_stalls_;
    stats.async_appends = async_appends_;
    stats.async_spilled = async_spilled_;
    stats.async_absorbed = async_absorbed_;
    stats.spill_queue_depth = spill_queue_.size();
    stats.spill_queue_bytes = queue_bytes_;
    stats.spill_queue_peak = queue_peak_;
  }
  stats.restored_in_flight =
      restored_in_flight_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(latency_mutex_);
  stats.update_latency_ms = update_latency_ms_;
  stats.restore_latency_ms = restore_latency_ms_;
  return stats;
}

}  // namespace rcloak::server
