#include "server/continuous_session_pool.h"

#include <string_view>
#include <unordered_set>
#include <utility>

#include "util/stopwatch.h"

namespace rcloak::server {

using core::ContinuousPolicy;

ContinuousSessionPool::ContinuousSessionPool(AnonymizationServer& server,
                                             const SessionPoolOptions& options)
    : server_(&server), deanonymizer_(server.engine().context()) {
  const int shards =
      options.num_shards > 0 ? options.num_shards : server.num_workers();
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ContinuousSessionPool::Shard& ContinuousSessionPool::ShardFor(
    const std::string& user_id) {
  return *shards_[hash_(user_id) % shards_.size()];
}

const ContinuousSessionPool::Shard& ContinuousSessionPool::ShardFor(
    const std::string& user_id) const {
  return *shards_[hash_(user_id) % shards_.size()];
}

Status ContinuousSessionPool::Track(std::string user_id,
                                    core::PrivacyProfile profile,
                                    core::Algorithm algorithm,
                                    KeyProvider key_provider,
                                    const core::ContinuousOptions& options,
                                    double now_s) {
  RCLOAK_RETURN_IF_ERROR(profile.Validate());
  if (!key_provider) {
    return Status::InvalidArgument("track: key provider must be callable");
  }
  Shard& shard = ShardFor(user_id);
  ContinuousPolicy policy(user_id, std::move(profile), algorithm, options);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto [it, inserted] = shard.sessions.emplace(
      std::move(user_id),
      Session(std::move(policy), std::move(key_provider)));
  if (!inserted) {
    return Status::FailedPrecondition("track: user already tracked: " +
                                      it->first);
  }
  // Registration counts as activity: EvictIdle must not reap a session
  // that was tracked late in simulation time but never updated yet.
  it->second.last_update_s = now_s;
  return Status::Ok();
}

bool ContinuousSessionPool::Evict(const std::string& user_id) {
  Shard& shard = ShardFor(user_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.sessions.find(user_id);
  if (it == shard.sessions.end()) return false;
  shard.RetireSession(it->second);
  shard.sessions.erase(it);
  ++shard.evicted;
  return true;
}

std::size_t ContinuousSessionPool::EvictIdle(double now_s, double idle_s) {
  std::size_t evicted = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->sessions.begin(); it != shard->sessions.end();) {
      if (now_s - it->second.last_update_s > idle_s) {
        shard->RetireSession(it->second);
        it = shard->sessions.erase(it);
        ++shard->evicted;
        ++shard->evicted_idle;
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  return evicted;
}

void ContinuousSessionPool::RunRound(
    const std::vector<PositionUpdate>& updates,
    const std::vector<std::size_t>& round,
    std::vector<StatusOr<core::CloakedArtifact>>& results) {
  // ---- phase 1: classify under the shard locks; no engine work ----------
  std::vector<PendingRecloak> pending;
  std::vector<AnonymizationServer::BatchJob> jobs;
  for (const std::size_t idx : round) {
    const PositionUpdate& update = updates[idx];
    const std::size_t shard_index = hash_(update.user_id) % shards_.size();
    Shard& shard = *shards_[shard_index];
    PendingRecloak recloak;
    core::AnonymizeRequest request;
    KeyProvider provider;
    bool needs_recloak = false;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      ++shard.updates;
      const auto it = shard.sessions.find(update.user_id);
      if (it == shard.sessions.end()) {
        ++shard.unknown_user;
        results[idx] =
            Status::NotFound("untracked user: " + update.user_id);
        continue;
      }
      Session& session = it->second;
      session.last_update_s = update.now_s;
      switch (session.policy.OnUpdate(update.now_s, update.segment)) {
        case ContinuousPolicy::Action::kServe:
          ++shard.served_in_region;
          results[idx] = *session.policy.artifact();
          break;
        case ContinuousPolicy::Action::kServeStale:
          ++shard.throttled_stale;
          results[idx] = *session.policy.artifact();
          break;
        case ContinuousPolicy::Action::kRecloak:
          recloak.update_index = idx;
          recloak.shard = shard_index;
          recloak.epoch = session.policy.next_epoch();
          recloak.validity_level = session.policy.validity_level();
          recloak.profile = session.policy.profile();
          request.origin = update.segment;
          request.profile = recloak.profile;
          request.algorithm = session.policy.algorithm();
          request.context = session.policy.EpochContext(recloak.epoch);
          // Copied so the user-supplied provider runs OUTSIDE the shard
          // lock: it may be slow (KMS round-trips) or call back into the
          // pool, and either must not stall or deadlock the shard.
          provider = session.key_provider;
          needs_recloak = true;
          break;
      }
    }
    if (!needs_recloak) continue;
    recloak.keys = provider(recloak.epoch);
    jobs.push_back({std::move(request), recloak.keys});
    pending.push_back(std::move(recloak));
  }
  if (pending.empty()) return;

  // ---- phase 2: one server batch for every region exit -------------------
  auto futures = server_->SubmitBatch(std::move(jobs));
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!futures[i].ok()) {
      pending[i].result = futures[i].status();
      continue;
    }
    pending[i].result = futures[i]->get();
  }

  // ---- phase 3: validity regions for the fresh artifacts, one batch -----
  // The per-epoch granted key maps live here so ReduceBatch can borrow.
  std::vector<std::map<int, crypto::AccessKey>> granted(pending.size());
  std::vector<core::Deanonymizer::ReduceJob> reduce_jobs;
  std::vector<std::size_t> reduce_owner;  // reduce job -> pending index
  for (std::size_t i = 0; i < pending.size(); ++i) {
    PendingRecloak& recloak = pending[i];
    if (!recloak.result.ok()) continue;
    const int num_levels = recloak.profile.num_levels();
    for (int level = recloak.validity_level + 1; level <= num_levels;
         ++level) {
      granted[i].emplace(level, recloak.keys.LevelKey(level));
    }
    reduce_jobs.push_back({&recloak.result->artifact, &granted[i],
                           recloak.validity_level});
    reduce_owner.push_back(i);
  }
  auto regions = deanonymizer_.ReduceBatch(reduce_jobs);

  // ---- phase 4: commit under the shard locks -----------------------------
  std::vector<StatusOr<core::CloakRegion>*> region_of(pending.size(),
                                                      nullptr);
  for (std::size_t j = 0; j < reduce_owner.size(); ++j) {
    region_of[reduce_owner[j]] = &regions[j];
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    PendingRecloak& recloak = pending[i];
    const std::size_t idx = recloak.update_index;
    Shard& shard = *shards_[recloak.shard];
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (!recloak.result.ok()) {
      ++shard.recloak_failures;
      results[idx] = recloak.result.status();
      continue;
    }
    StatusOr<core::CloakRegion>& region = *region_of[i];
    if (!region.ok()) {
      ++shard.recloak_failures;
      results[idx] = region.status();
      continue;
    }
    results[idx] = recloak.result->artifact;
    const auto it = shard.sessions.find(updates[idx].user_id);
    if (it == shard.sessions.end()) continue;  // evicted in flight
    Session& session = it->second;
    if (session.policy.next_epoch() != recloak.epoch) continue;  // raced
    session.policy.CommitRecloak(updates[idx].now_s,
                                 std::move(recloak.result).value().artifact,
                                 std::move(region).value());
    ++shard.recloaks;
  }
}

std::vector<StatusOr<core::CloakedArtifact>>
ContinuousSessionPool::UpdateBatch(const std::vector<PositionUpdate>& updates) {
  std::vector<StatusOr<core::CloakedArtifact>> results;
  results.reserve(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    results.emplace_back(Status::Internal("batch update not visited"));
  }
  std::vector<std::size_t> remaining(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) remaining[i] = i;

  // A round holds at most one update per user, preserving input order, so
  // a user's second update in a batch observes the first one's commit.
  while (!remaining.empty()) {
    std::vector<std::size_t> round;
    std::vector<std::size_t> deferred;
    std::unordered_set<std::string_view> users_in_round;
    for (const std::size_t idx : remaining) {
      if (users_in_round.insert(updates[idx].user_id).second) {
        round.push_back(idx);
      } else {
        deferred.push_back(idx);
      }
    }
    Stopwatch timer;
    RunRound(updates, round, results);
    const double per_update_ms =
        round.empty() ? 0.0 : timer.ElapsedMillis() /
                                  static_cast<double>(round.size());
    {
      std::lock_guard<std::mutex> lock(latency_mutex_);
      for (std::size_t i = 0; i < round.size(); ++i) {
        update_latency_ms_.Add(per_update_ms);
      }
    }
    remaining = std::move(deferred);
  }
  return results;
}

StatusOr<core::CloakedArtifact> ContinuousSessionPool::Update(
    const std::string& user_id, double now_s, roadnet::SegmentId segment) {
  std::vector<PositionUpdate> one;
  one.push_back({user_id, now_s, segment});
  auto results = UpdateBatch(one);
  return std::move(results.front());
}

StatusOr<std::uint64_t> ContinuousSessionPool::UserEpoch(
    const std::string& user_id) const {
  const Shard& shard = ShardFor(user_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.sessions.find(user_id);
  if (it == shard.sessions.end()) {
    return Status::NotFound("untracked user: " + user_id);
  }
  return it->second.policy.epoch();
}

StatusOr<core::ContinuousStats> ContinuousSessionPool::UserStats(
    const std::string& user_id) const {
  const Shard& shard = ShardFor(user_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.sessions.find(user_id);
  if (it == shard.sessions.end()) {
    return Status::NotFound("untracked user: " + user_id);
  }
  return it->second.policy.stats();
}

std::size_t ContinuousSessionPool::session_count() const {
  std::size_t count = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    count += shard->sessions.size();
  }
  return count;
}

SessionPoolStats ContinuousSessionPool::stats() const {
  SessionPoolStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.updates += shard->updates;
    stats.served_in_region += shard->served_in_region;
    stats.throttled_stale += shard->throttled_stale;
    stats.recloaks += shard->recloaks;
    stats.recloak_failures += shard->recloak_failures;
    stats.unknown_user += shard->unknown_user;
    stats.evicted += shard->evicted;
    stats.evicted_idle += shard->evicted_idle;
    stats.retired_updates += shard->retired_updates;
    stats.retired_recloaks += shard->retired_recloaks;
    stats.retired_throttled_stale += shard->retired_throttled_stale;
    stats.active_sessions += shard->sessions.size();
  }
  std::lock_guard<std::mutex> lock(latency_mutex_);
  stats.update_latency_ms = update_latency_ms_;
  return stats;
}

}  // namespace rcloak::server
