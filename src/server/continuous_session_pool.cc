#include "server/continuous_session_pool.h"

#include <bit>
#include <unordered_set>
#include <utility>

#include "util/stopwatch.h"

namespace rcloak::server {

using core::ContinuousPolicy;

namespace {

// Spill envelope: the pool-level session fields around the policy blob.
Bytes EncodeSpillEnvelope(const Bytes& policy_blob, double last_update_s,
                          roadnet::SegmentId last_segment) {
  Bytes out;
  PutVarint(out, policy_blob.size());
  out.insert(out.end(), policy_blob.begin(), policy_blob.end());
  PutU64le(out, std::bit_cast<std::uint64_t>(last_update_s));
  PutVarint(out, roadnet::Index(last_segment));
  return out;
}

struct SpillEnvelope {
  Bytes policy_blob;
  double last_update_s = 0.0;
  roadnet::SegmentId last_segment = roadnet::kInvalidSegment;
};

StatusOr<SpillEnvelope> DecodeSpillEnvelope(const Bytes& data) {
  SpillEnvelope envelope;
  std::size_t offset = 0;
  const auto blob_size = GetVarint(data, &offset);
  // Subtract-side compare: a hostile length near 2^64 must not wrap.
  if (!blob_size || *blob_size > data.size() - offset) {
    return Status::DataLoss("spilled session truncated");
  }
  envelope.policy_blob.assign(
      data.begin() + static_cast<std::ptrdiff_t>(offset),
      data.begin() + static_cast<std::ptrdiff_t>(offset + *blob_size));
  offset += *blob_size;
  const auto clock_bits = GetU64le(data, &offset);
  const auto segment = GetVarint(data, &offset);
  if (!clock_bits || !segment) {
    return Status::DataLoss("spilled session truncated");
  }
  envelope.last_update_s = std::bit_cast<double>(*clock_bits);
  envelope.last_segment =
      roadnet::SegmentId{static_cast<std::uint32_t>(*segment)};
  return envelope;
}

}  // namespace

ContinuousSessionPool::ContinuousSessionPool(AnonymizationServer& server,
                                             const SessionPoolOptions& options)
    : server_(&server),
      deanonymizer_(server.engine().context()),
      options_(options) {
  const int shards =
      options.num_shards > 0 ? options.num_shards : server.num_workers();
  const std::size_t segments = server.engine().network().segment_count();
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->occupancy.assign(segments, 0);
  }
}

StatusOr<util::UserId> ContinuousSessionPool::TrackPolicy(
    core::ContinuousPolicy policy, KeyProvider key_provider, double now_s,
    roadnet::SegmentId last_segment, bool restored) {
  const util::UserId id = interner_.Intern(policy.user_id());
  Shard& shard = *shards_[ShardIndexFor(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto [session, inserted] = shard.sessions.TryEmplace(
      id, Session(std::move(policy), std::move(key_provider)));
  if (!inserted) {
    return Status::FailedPrecondition(
        "track: user already tracked: " +
        std::string(interner_.NameOf(id)));
  }
  // Registration counts as activity: EvictIdle must not reap a session
  // that was tracked late in simulation time but never updated yet.
  session->last_update_s = now_s;
  session->last_segment = last_segment;
  shard.OccupancyAdd(last_segment);
  if (restored) ++shard.restored;
  return id;
}

StatusOr<util::UserId> ContinuousSessionPool::Track(
    std::string_view user_id, core::PrivacyProfile profile,
    core::Algorithm algorithm, KeyProvider key_provider,
    const core::ContinuousOptions& options, double now_s) {
  RCLOAK_RETURN_IF_ERROR(profile.Validate());
  if (!key_provider) {
    return Status::InvalidArgument("track: key provider must be callable");
  }
  ContinuousPolicy policy(std::string(user_id), std::move(profile), algorithm,
                          options);
  return TrackPolicy(std::move(policy), std::move(key_provider), now_s,
                     roadnet::kInvalidSegment, /*restored=*/false);
}

StatusOr<util::UserId> ContinuousSessionPool::UserIdOf(
    std::string_view user_id) const {
  const util::UserId id = interner_.Find(user_id);
  if (!id.valid()) {
    return Status::NotFound("untracked user: " + std::string(user_id));
  }
  return id;
}

bool ContinuousSessionPool::Evict(std::string_view user_id) {
  const util::UserId id = interner_.Find(user_id);
  if (!id.valid()) return false;
  Shard& shard = *shards_[ShardIndexFor(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  Session* session = shard.sessions.Find(id);
  if (session == nullptr) return false;
  shard.RetireSession(*session);
  shard.OccupancyRemove(session->last_segment);
  shard.sessions.Erase(id);
  ++shard.evicted;
  return true;
}

std::size_t ContinuousSessionPool::EvictIdle(double now_s, double idle_s) {
  std::size_t evicted = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    evicted += shard->sessions.EraseIf(
        [&](util::UserId, Session& session) {
          if (now_s - session.last_update_s <= idle_s) return false;
          shard->RetireSession(session);
          shard->OccupancyRemove(session.last_segment);
          ++shard->evicted;
          ++shard->evicted_idle;
          return true;
        });
  }
  return evicted;
}

StatusOr<ContinuousSessionPool::SpilledSession> ContinuousSessionPool::Spill(
    std::string_view user_id) {
  const util::UserId id = interner_.Find(user_id);
  if (!id.valid()) {
    return Status::NotFound("untracked user: " + std::string(user_id));
  }
  Shard& shard = *shards_[ShardIndexFor(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  Session* session = shard.sessions.Find(id);
  if (session == nullptr) {
    return Status::NotFound("untracked user: " + std::string(user_id));
  }
  SpilledSession spilled;
  spilled.user_id = std::string(user_id);
  spilled.state = EncodeSpillEnvelope(session->policy.Serialize(),
                                      session->last_update_s,
                                      session->last_segment);
  shard.OccupancyRemove(session->last_segment);
  shard.sessions.Erase(id);
  ++shard.spilled;
  return spilled;
}

std::vector<ContinuousSessionPool::SpilledSession>
ContinuousSessionPool::EvictIdleSpill(double now_s, double idle_s) {
  std::vector<SpilledSession> spilled;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->sessions.EraseIf([&](util::UserId id, Session& session) {
      if (now_s - session.last_update_s <= idle_s) return false;
      SpilledSession out;
      out.user_id = std::string(interner_.NameOf(id));
      out.state = EncodeSpillEnvelope(session.policy.Serialize(),
                                      session.last_update_s,
                                      session.last_segment);
      spilled.push_back(std::move(out));
      shard->OccupancyRemove(session.last_segment);
      ++shard->spilled;
      return true;
    });
  }
  return spilled;
}

StatusOr<util::UserId> ContinuousSessionPool::Restore(
    const SpilledSession& spilled, KeyProvider key_provider) {
  if (!key_provider) {
    return Status::InvalidArgument("restore: key provider must be callable");
  }
  RCLOAK_ASSIGN_OR_RETURN(SpillEnvelope envelope,
                          DecodeSpillEnvelope(spilled.state));
  RCLOAK_ASSIGN_OR_RETURN(
      ContinuousPolicy policy,
      ContinuousPolicy::Deserialize(envelope.policy_blob,
                                    server_->engine().network()));
  return TrackPolicy(std::move(policy), std::move(key_provider),
                     envelope.last_update_s, envelope.last_segment,
                     /*restored=*/true);
}

void ContinuousSessionPool::RunRound(
    const std::vector<IdPositionUpdate>& updates,
    const std::vector<std::size_t>& round,
    std::vector<StatusOr<SharedArtifact>>& results) {
  // ---- phase 1: classify under the shard locks; no engine work ----------
  std::vector<PendingRecloak> pending;
  std::vector<AnonymizationServer::BatchJob> jobs;
  for (const std::size_t idx : round) {
    const IdPositionUpdate& update = updates[idx];
    const std::size_t shard_index = ShardIndexFor(update.user);
    Shard& shard = *shards_[shard_index];
    PendingRecloak recloak;
    core::AnonymizeRequest request;
    KeyProvider provider;
    bool needs_recloak = false;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      ++shard.updates;
      Session* session = shard.sessions.Find(update.user);
      if (session == nullptr) {
        ++shard.unknown_user;
        results[idx] = Status::NotFound(
            "untracked user: " + std::string(interner_.NameOf(update.user)));
        continue;
      }
      session->last_update_s = update.now_s;
      shard.OccupancyRemove(session->last_segment);
      session->last_segment = update.segment;
      shard.OccupancyAdd(update.segment);
      switch (session->policy.OnUpdate(update.now_s, update.segment)) {
        case ContinuousPolicy::Action::kServe:
          ++shard.served_in_region;
          // Refcount bump only — the in-region path allocates nothing.
          results[idx] = session->policy.artifact();
          break;
        case ContinuousPolicy::Action::kServeStale:
          ++shard.throttled_stale;
          results[idx] = session->policy.artifact();
          break;
        case ContinuousPolicy::Action::kRecloak:
          recloak.update_index = idx;
          recloak.user = update.user;
          recloak.shard = shard_index;
          recloak.epoch = session->policy.next_epoch();
          recloak.validity_level = session->policy.validity_level();
          recloak.profile = session->policy.profile();
          request.origin = update.segment;
          request.profile = recloak.profile;
          request.algorithm = session->policy.algorithm();
          request.context = session->policy.EpochContext(recloak.epoch);
          // Copied so the user-supplied provider runs OUTSIDE the shard
          // lock: it may be slow (KMS round-trips) or call back into the
          // pool, and either must not stall or deadlock the shard.
          provider = session->key_provider;
          needs_recloak = true;
          break;
      }
    }
    if (!needs_recloak) continue;
    recloak.keys = provider(recloak.epoch);
    jobs.push_back({std::move(request), recloak.keys});
    pending.push_back(std::move(recloak));
  }
  if (pending.empty()) return;

  // ---- phase 2: one server batch for every region exit -------------------
  auto futures = server_->SubmitBatch(std::move(jobs));
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!futures[i].ok()) {
      pending[i].result = futures[i].status();
      continue;
    }
    pending[i].result = futures[i]->get();
  }

  // ---- phase 3: validity regions for the fresh artifacts -----------------
  // The per-epoch granted key maps live here so the reduce jobs can borrow.
  std::vector<std::map<int, crypto::AccessKey>> granted(pending.size());
  std::vector<core::Deanonymizer::ReduceJob> reduce_jobs;
  std::vector<std::size_t> reduce_owner;  // reduce job -> pending index
  for (std::size_t i = 0; i < pending.size(); ++i) {
    PendingRecloak& recloak = pending[i];
    if (!recloak.result.ok()) continue;
    const int num_levels = recloak.profile.num_levels();
    for (int level = recloak.validity_level + 1; level <= num_levels;
         ++level) {
      granted[i].emplace(level, recloak.keys.LevelKey(level));
    }
    reduce_jobs.push_back({&recloak.result->artifact, &granted[i],
                           recloak.validity_level});
    reduce_owner.push_back(i);
  }
  // Large exit rounds fan the audit step across the server workers (per-
  // worker ReduceSession reuse, the calling thread as an extra lane);
  // small ones stay serial — byte-identical either way.
  std::vector<StatusOr<core::CloakRegion>> regions;
  if (options_.min_reduce_fanout > 0 &&
      reduce_jobs.size() >= options_.min_reduce_fanout &&
      server_->num_workers() > 1) {
    regions = server_->ReduceOnWorkers(deanonymizer_, std::move(reduce_jobs));
    reduce_fanouts_.fetch_add(1, std::memory_order_relaxed);
  } else {
    regions = deanonymizer_.ReduceBatch(reduce_jobs);
  }

  // ---- phase 4: commit under the shard locks -----------------------------
  std::vector<StatusOr<core::CloakRegion>*> region_of(pending.size(),
                                                      nullptr);
  for (std::size_t j = 0; j < reduce_owner.size(); ++j) {
    region_of[reduce_owner[j]] = &regions[j];
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    PendingRecloak& recloak = pending[i];
    const std::size_t idx = recloak.update_index;
    Shard& shard = *shards_[recloak.shard];
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (!recloak.result.ok()) {
      ++shard.recloak_failures;
      results[idx] = recloak.result.status();
      continue;
    }
    StatusOr<core::CloakRegion>& region = *region_of[i];
    if (!region.ok()) {
      ++shard.recloak_failures;
      results[idx] = region.status();
      continue;
    }
    // One wrapping shared between the serve result and the committed
    // session state.
    auto artifact = std::make_shared<const core::CloakedArtifact>(
        std::move(recloak.result).value().artifact);
    results[idx] = artifact;
    Session* session = shard.sessions.Find(recloak.user);
    if (session == nullptr) continue;  // evicted in flight
    if (session->policy.next_epoch() != recloak.epoch) continue;  // raced
    session->policy.CommitRecloak(updates[idx].now_s, std::move(artifact),
                                  std::move(region).value());
    ++shard.recloaks;
  }
}

std::vector<StatusOr<ContinuousSessionPool::SharedArtifact>>
ContinuousSessionPool::UpdateBatch(
    const std::vector<IdPositionUpdate>& updates) {
  std::vector<StatusOr<SharedArtifact>> results;
  results.reserve(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    results.emplace_back(Status::Internal("batch update not visited"));
  }
  std::vector<std::size_t> remaining;
  remaining.reserve(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (updates[i].user.valid()) {
      remaining.push_back(i);
      continue;
    }
    // Never-interned handle: there is no id shard to charge, so the
    // boundary charges the first shard.
    Shard& shard = *shards_.front();
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.updates;
    ++shard.unknown_user;
    results[i] = Status::NotFound("untracked user");
  }

  // A round holds at most one update per user, preserving input order, so
  // a user's second update in a batch observes the first one's commit.
  while (!remaining.empty()) {
    std::vector<std::size_t> round;
    std::vector<std::size_t> deferred;
    std::unordered_set<std::uint32_t> users_in_round;
    for (const std::size_t idx : remaining) {
      if (users_in_round.insert(updates[idx].user.value).second) {
        round.push_back(idx);
      } else {
        deferred.push_back(idx);
      }
    }
    Stopwatch timer;
    RunRound(updates, round, results);
    const double per_update_ms =
        round.empty() ? 0.0 : timer.ElapsedMillis() /
                                  static_cast<double>(round.size());
    {
      std::lock_guard<std::mutex> lock(latency_mutex_);
      for (std::size_t i = 0; i < round.size(); ++i) {
        update_latency_ms_.Add(per_update_ms);
      }
    }
    remaining = std::move(deferred);
  }
  return results;
}

std::vector<StatusOr<core::CloakedArtifact>>
ContinuousSessionPool::UpdateBatch(const std::vector<PositionUpdate>& updates) {
  // One boundary hash per update; unknown names fail fast below (invalid
  // handles are resolved inside the id batch).
  std::vector<IdPositionUpdate> ids;
  ids.reserve(updates.size());
  for (const PositionUpdate& update : updates) {
    ids.push_back(
        {interner_.Find(update.user_id), update.now_s, update.segment});
  }
  const auto shared = UpdateBatch(ids);
  // Compatibility boundary: copy each served artifact out by value.
  std::vector<StatusOr<core::CloakedArtifact>> results;
  results.reserve(shared.size());
  for (std::size_t i = 0; i < shared.size(); ++i) {
    if (!ids[i].user.valid()) {
      results.emplace_back(
          Status::NotFound("untracked user: " + updates[i].user_id));
    } else if (!shared[i].ok()) {
      results.emplace_back(shared[i].status());
    } else {
      results.emplace_back(**shared[i]);
    }
  }
  return results;
}

StatusOr<core::CloakedArtifact> ContinuousSessionPool::Update(
    std::string_view user_id, double now_s, roadnet::SegmentId segment) {
  std::vector<PositionUpdate> one;
  one.push_back({std::string(user_id), now_s, segment});
  auto results = UpdateBatch(one);
  return std::move(results.front());
}

mobility::OccupancySnapshot ContinuousSessionPool::BuildOccupancy() const {
  mobility::OccupancySnapshot occupancy(
      server_->engine().network().segment_count());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    occupancy.AddCounts(shard->occupancy);
  }
  return occupancy;
}

mobility::OccupancySnapshot ContinuousSessionPool::BuildOccupancyRebuild()
    const {
  mobility::OccupancySnapshot occupancy(
      server_->engine().network().segment_count());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->sessions.ForEach([&occupancy](util::UserId,
                                         const Session& session) {
      if (roadnet::Index(session.last_segment) < occupancy.segment_count()) {
        occupancy.Add(session.last_segment);
      }
    });
  }
  return occupancy;
}

StatusOr<std::uint64_t> ContinuousSessionPool::UserEpoch(
    util::UserId user) const {
  if (!user.valid()) return Status::NotFound("untracked user");
  const Shard& shard = *shards_[ShardIndexFor(user)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const Session* session = shard.sessions.Find(user);
  if (session == nullptr) {
    return Status::NotFound("untracked user: " +
                            std::string(interner_.NameOf(user)));
  }
  return session->policy.epoch();
}

StatusOr<std::uint64_t> ContinuousSessionPool::UserEpoch(
    std::string_view user_id) const {
  const util::UserId id = interner_.Find(user_id);
  if (!id.valid()) {
    return Status::NotFound("untracked user: " + std::string(user_id));
  }
  return UserEpoch(id);
}

StatusOr<core::ContinuousStats> ContinuousSessionPool::UserStats(
    std::string_view user_id) const {
  const util::UserId id = interner_.Find(user_id);
  if (!id.valid()) {
    return Status::NotFound("untracked user: " + std::string(user_id));
  }
  const Shard& shard = *shards_[ShardIndexFor(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const Session* session = shard.sessions.Find(id);
  if (session == nullptr) {
    return Status::NotFound("untracked user: " + std::string(user_id));
  }
  return session->policy.stats();
}

std::size_t ContinuousSessionPool::session_count() const {
  std::size_t count = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    count += shard->sessions.size();
  }
  return count;
}

SessionPoolStats ContinuousSessionPool::stats() const {
  SessionPoolStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.updates += shard->updates;
    stats.served_in_region += shard->served_in_region;
    stats.throttled_stale += shard->throttled_stale;
    stats.recloaks += shard->recloaks;
    stats.recloak_failures += shard->recloak_failures;
    stats.unknown_user += shard->unknown_user;
    stats.evicted += shard->evicted;
    stats.evicted_idle += shard->evicted_idle;
    stats.spilled += shard->spilled;
    stats.restored += shard->restored;
    stats.retired_updates += shard->retired_updates;
    stats.retired_recloaks += shard->retired_recloaks;
    stats.retired_throttled_stale += shard->retired_throttled_stale;
    stats.active_sessions += shard->sessions.size();
  }
  stats.reduce_fanouts = reduce_fanouts_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(latency_mutex_);
  stats.update_latency_ms = update_latency_ms_;
  return stats;
}

}  // namespace rcloak::server
