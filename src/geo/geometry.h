// Planar geometry primitives. Coordinates are meters in a local projected
// frame (the USGS map the paper uses is small enough that a flat frame is
// exact for cloaking purposes).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace rcloak::geo {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend Point operator+(Point a, Point b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend Point operator-(Point a, Point b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend Point operator*(Point a, double s) noexcept {
    return {a.x * s, a.y * s};
  }
  friend bool operator==(Point a, Point b) noexcept {
    return a.x == b.x && a.y == b.y;
  }
};

inline double Dot(Point a, Point b) noexcept { return a.x * b.x + a.y * b.y; }

inline double DistanceSquared(Point a, Point b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double Distance(Point a, Point b) noexcept {
  return std::sqrt(DistanceSquared(a, b));
}

inline Point Midpoint(Point a, Point b) noexcept {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

// Interpolate along segment a->b; t in [0,1].
inline Point Lerp(Point a, Point b, double t) noexcept {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

// Axis-aligned bounding box. Default-constructed box is empty.
struct BoundingBox {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  bool empty() const noexcept { return min_x > max_x; }

  void Extend(Point p) noexcept {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  void Extend(const BoundingBox& other) noexcept {
    if (other.empty()) return;
    Extend(Point{other.min_x, other.min_y});
    Extend(Point{other.max_x, other.max_y});
  }

  double width() const noexcept { return empty() ? 0.0 : max_x - min_x; }
  double height() const noexcept { return empty() ? 0.0 : max_y - min_y; }
  double Area() const noexcept { return width() * height(); }
  double Diagonal() const noexcept {
    return std::sqrt(width() * width() + height() * height());
  }
  Point Center() const noexcept {
    return {(min_x + max_x) * 0.5, (min_y + max_y) * 0.5};
  }

  bool Contains(Point p) const noexcept {
    return !empty() && p.x >= min_x && p.x <= max_x && p.y >= min_y &&
           p.y <= max_y;
  }
  bool Intersects(const BoundingBox& o) const noexcept {
    return !empty() && !o.empty() && min_x <= o.max_x && o.min_x <= max_x &&
           min_y <= o.max_y && o.min_y <= max_y;
  }
};

// Distance from point p to segment [a, b].
double PointSegmentDistance(Point p, Point a, Point b) noexcept;

}  // namespace rcloak::geo
