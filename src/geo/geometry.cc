#include "geo/geometry.h"

namespace rcloak::geo {

double PointSegmentDistance(Point p, Point a, Point b) noexcept {
  const Point ab = b - a;
  const double len_sq = Dot(ab, ab);
  if (len_sq == 0.0) return Distance(p, a);
  double t = Dot(p - a, ab) / len_sq;
  t = std::clamp(t, 0.0, 1.0);
  return Distance(p, Lerp(a, b, t));
}

}  // namespace rcloak::geo
