#include "core/artifact_debug.h"

#include <ostream>
#include <sstream>

namespace rcloak::core {

void PrintArtifact(std::ostream& os, const CloakedArtifact& artifact) {
  os << "CloakedArtifact {\n";
  os << "  algorithm: " << AlgorithmName(artifact.algorithm) << "\n";
  os << "  context:   \"" << artifact.context << "\"\n";
  os << "  map fingerprint: " << std::hex << artifact.map_fingerprint
     << std::dec << "\n";
  if (artifact.algorithm == Algorithm::kRple) {
    os << "  RPLE T: " << artifact.rple_T << "\n";
  }
  os << "  levels: " << artifact.num_levels() << "\n";
  std::uint32_t prev = 1;
  for (int level = 1; level <= artifact.num_levels(); ++level) {
    const auto& record =
        artifact.levels[static_cast<std::size_t>(level - 1)];
    os << "    L" << level << ": region " << record.region_size
       << " segments (+" << (record.region_size - prev)
       << "), seal <opaque u64>, walk metadata "
       << record.step_bits_blinded.size() << " blinded bytes\n";
    prev = record.region_size;
  }
  os << "  published region: " << artifact.region_segments.size()
     << " segment ids";
  if (!artifact.region_segments.empty()) {
    os << " [" << roadnet::Index(artifact.region_segments.front()) << " .. "
       << roadnet::Index(artifact.region_segments.back()) << "]";
  }
  os << "\n}\n";
}

std::string DescribeArtifact(const CloakedArtifact& artifact) {
  std::ostringstream os;
  PrintArtifact(os, artifact);
  return os.str();
}

}  // namespace rcloak::core
