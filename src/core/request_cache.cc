#include "core/request_cache.h"

#include <cstdio>

namespace rcloak::core {

std::string RequestCache::CacheKey(const std::string& user,
                                   const AnonymizeRequest& request) {
  std::string key = user;
  key += '\x1f';
  key += std::to_string(roadnet::Index(request.origin));
  key += '\x1f';
  key += std::to_string(static_cast<int>(request.algorithm));
  for (int level = 1; level <= request.profile.num_levels(); ++level) {
    const auto& req = request.profile.level(level);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\x1f%u/%u/%.3f", req.delta_k,
                  req.delta_l, req.sigma_s);
    key += buf;
  }
  return key;
}

StatusOr<AnonymizeResult> RequestCache::GetOrAnonymize(
    Anonymizer& anonymizer, const std::string& user,
    const AnonymizeRequest& request, const crypto::KeyChain& keys,
    double now_s) {
  const std::string cache_key = CacheKey(user, request);
  const auto it = entries_.find(cache_key);
  if (it != entries_.end() && now_s < it->second.expires_at) {
    ++hits_;
    return it->second.result;
  }
  ++misses_;
  AnonymizeRequest fresh = request;
  fresh.context = user + "/epoch-" + std::to_string(epoch_counter_++);
  auto result = anonymizer.Anonymize(fresh, keys);
  if (!result.ok()) return result.status();
  entries_[cache_key] = Entry{*result, now_s + ttl_s_};
  return std::move(result).value();
}

void RequestCache::EvictExpired(double now_s) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires_at <= now_s) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace rcloak::core
