// User-defined privacy profiles.
//
// Per the paper (§II): the single-level profile is (δk, σs); the
// multi-level profile is (δk^i, σs^i) for levels 1..N-1 plus L0 = the
// user's own segment. ReverseCloak additionally guarantees segment
// l-diversity [9], so each level carries δl as well.
#pragma once

#include <vector>

#include "util/status.h"

namespace rcloak::core {

// Requirement for one privacy level L^i (i >= 1).
struct LevelRequirement {
  // Location k-anonymity: the level's region must cover >= delta_k users.
  std::uint32_t delta_k = 10;
  // Segment l-diversity: the region must span >= delta_l road segments.
  std::uint32_t delta_l = 3;
  // Maximum spatial resolution: the region's bounding-box diagonal must not
  // exceed sigma_s meters. Expansion aborts (request fails) otherwise.
  double sigma_s = 5000.0;
};

// Profile across all privacy levels, ordered L^1 .. L^N (monotonically
// stronger privacy: requirements must be non-decreasing level to level).
class PrivacyProfile {
 public:
  PrivacyProfile() = default;
  explicit PrivacyProfile(std::vector<LevelRequirement> levels)
      : levels_(std::move(levels)) {}

  static PrivacyProfile SingleLevel(LevelRequirement requirement) {
    return PrivacyProfile({requirement});
  }

  // Convenience ladder: N levels with k doubling from k1 (l and sigma scale
  // similarly), mirroring the demo GUI's "Default setting".
  static PrivacyProfile DefaultLadder(int num_levels, std::uint32_t k1 = 5,
                                      std::uint32_t l1 = 2,
                                      double sigma1 = 3000.0);

  int num_levels() const noexcept { return static_cast<int>(levels_.size()); }
  // 1-based level accessor, matching the paper's L^i notation.
  const LevelRequirement& level(int i) const {
    return levels_[static_cast<std::size_t>(i - 1)];
  }

  // Checks N >= 1, per-level sanity (k >= 1, l >= 1, sigma > 0) and
  // monotonicity across levels.
  Status Validate() const;

 private:
  std::vector<LevelRequirement> levels_;
};

}  // namespace rcloak::core
