#include "core/continuous.h"

namespace rcloak::core {

StatusOr<CloakRegion> ComputeValidityRegion(const Deanonymizer& deanonymizer,
                                            const CloakedArtifact& artifact,
                                            const crypto::KeyChain& keys,
                                            const PrivacyProfile& profile,
                                            int validity_level) {
  const int validity = std::min(validity_level, profile.num_levels());
  if (validity == profile.num_levels()) {
    // FullRegion keeps the fingerprint/segment-validity checks of the
    // keyed path while skipping the replay itself.
    return deanonymizer.FullRegion(artifact);
  }
  std::map<int, crypto::AccessKey> granted;
  for (int level = validity + 1; level <= profile.num_levels(); ++level) {
    granted.emplace(level, keys.LevelKey(level));
  }
  return deanonymizer.Reduce(artifact, granted, validity);
}

ContinuousCloak::ContinuousCloak(Anonymizer& anonymizer,
                                 Deanonymizer& deanonymizer,
                                 PrivacyProfile profile, Algorithm algorithm,
                                 std::string user_id,
                                 KeyProvider key_provider,
                                 const ContinuousOptions& options)
    : anonymizer_(&anonymizer),
      deanonymizer_(&deanonymizer),
      key_provider_(std::move(key_provider)),
      policy_(std::move(user_id), std::move(profile), algorithm, options) {}

StatusOr<CloakedArtifact> ContinuousCloak::Update(
    double now_s, roadnet::SegmentId current_segment) {
  switch (policy_.OnUpdate(now_s, current_segment)) {
    case ContinuousPolicy::Action::kServe:
    case ContinuousPolicy::Action::kServeStale:
      return *policy_.artifact();
    case ContinuousPolicy::Action::kRecloak:
      break;
  }

  const std::uint64_t epoch = policy_.next_epoch();
  const crypto::KeyChain keys = key_provider_(epoch);
  AnonymizeRequest request;
  request.origin = current_segment;
  request.profile = policy_.profile();
  request.algorithm = policy_.algorithm();
  request.context = policy_.EpochContext(epoch);
  auto result = anonymizer_->Anonymize(request, keys);
  if (!result.ok()) return result.status();

  auto region =
      ComputeValidityRegion(*deanonymizer_, result->artifact, keys,
                            policy_.profile(), policy_.validity_level());
  if (!region.ok()) return region.status();

  policy_.CommitRecloak(now_s, std::move(result).value().artifact,
                        std::move(region).value());
  return *policy_.artifact();
}

}  // namespace rcloak::core
