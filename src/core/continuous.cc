#include "core/continuous.h"

namespace rcloak::core {

ContinuousCloak::ContinuousCloak(Anonymizer& anonymizer,
                                 Deanonymizer& deanonymizer,
                                 PrivacyProfile profile, Algorithm algorithm,
                                 std::string user_id,
                                 KeyProvider key_provider,
                                 const ContinuousOptions& options)
    : anonymizer_(&anonymizer),
      deanonymizer_(&deanonymizer),
      profile_(std::move(profile)),
      algorithm_(algorithm),
      user_id_(std::move(user_id)),
      key_provider_(std::move(key_provider)),
      options_(options) {}

Status ContinuousCloak::Recloak(double now_s, roadnet::SegmentId origin) {
  const std::uint64_t epoch = epoch_ + 1;
  const crypto::KeyChain keys = key_provider_(epoch);

  AnonymizeRequest request;
  request.origin = origin;
  request.profile = profile_;
  request.algorithm = algorithm_;
  request.context = user_id_ + "/epoch-" + std::to_string(epoch);
  auto result = anonymizer_->Anonymize(request, keys);
  if (!result.ok()) return result.status();

  // Validity region = the chosen level's region, computed once via the
  // de-anonymizer (the owner holds all keys). When the validity level is
  // the outermost level there is nothing to peel: the artifact's published
  // region is the validity region, no keyed replay needed.
  const int validity =
      std::min(options_.validity_level, profile_.num_levels());
  StatusOr<CloakRegion> region = Status::Internal("unset");
  if (validity == profile_.num_levels()) {
    // FullRegion keeps the fingerprint/segment-validity checks of the
    // keyed path while skipping the replay itself.
    region = deanonymizer_->FullRegion(result->artifact);
  } else {
    std::map<int, crypto::AccessKey> granted;
    for (int level = validity + 1; level <= profile_.num_levels(); ++level) {
      granted.emplace(level, keys.LevelKey(level));
    }
    region = deanonymizer_->Reduce(result->artifact, granted, validity);
  }
  if (!region.ok()) return region.status();

  if (artifact_) {
    stats_.validity_duration_s.Add(now_s - artifact_created_s_);
  }
  epoch_ = epoch;
  artifact_ = std::move(result).value().artifact;
  validity_region_ = std::move(region).value();
  artifact_created_s_ = now_s;
  stats_.last_recloak_time_s = now_s;
  ++stats_.recloaks;
  return Status::Ok();
}

StatusOr<CloakedArtifact> ContinuousCloak::Update(
    double now_s, roadnet::SegmentId current_segment) {
  ++stats_.updates;
  const bool have = artifact_.has_value();
  const bool inside =
      have && validity_region_ && validity_region_->Contains(current_segment);
  if (!inside) {
    const bool throttled =
        have && (now_s - stats_.last_recloak_time_s <
                 options_.min_recloak_interval_s);
    if (throttled) {
      // Keep serving the stale artifact inside the throttle window (the
      // region still k-anonymizes the *previous* position; position lag is
      // the documented cost of throttling).
      ++stats_.throttled_stale;
      return *artifact_;
    }
    RCLOAK_RETURN_IF_ERROR(Recloak(now_s, current_segment));
  }
  return *artifact_;
}

}  // namespace rcloak::core
