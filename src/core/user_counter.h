// User counting behind the location k-anonymity check.
//
// The expansion algorithms only ask one question — "how many distinct
// users does this region cover?" — but the right answer depends on the
// time model:
//   * SnapshotCounter: instantaneous occupancy; per-segment counts are
//     disjoint (each car is on exactly one segment), so summation is exact.
//   * WindowCounter (core/temporal.h): users observed over a deferral
//     window; a car can traverse several region segments, so the count
//     must be the *distinct* union, not a sum.
#pragma once

#include <cstdint>

#include "core/cloak_region.h"
#include "mobility/trace.h"

namespace rcloak::core {

class UserCounter {
 public:
  virtual ~UserCounter() = default;
  virtual std::uint64_t Count(const CloakRegion& region) const = 0;
};

class SnapshotCounter final : public UserCounter {
 public:
  explicit SnapshotCounter(const mobility::OccupancySnapshot& snapshot)
      : snapshot_(&snapshot) {}
  // O(1) after the first call per region: the region keeps a running count
  // against this snapshot that Insert/Erase maintain, so the per-step
  // Satisfied() checks of the expansion loops stop re-scanning the region.
  std::uint64_t Count(const CloakRegion& region) const override {
    return region.UserCount(*snapshot_);
  }

 private:
  const mobility::OccupancySnapshot* snapshot_;
};

}  // namespace rcloak::core
