#include "core/temporal.h"

#include <algorithm>
#include <unordered_set>

namespace rcloak::core {

TraceTimeline::TraceTimeline(std::vector<mobility::TraceRecord> records,
                             std::size_t segment_count)
    : records_(std::move(records)), segment_count_(segment_count) {
  // Defensive: callers should pass ordered traces, but the window query
  // depends on it, so enforce.
  std::stable_sort(records_.begin(), records_.end(),
                   [](const mobility::TraceRecord& a,
                      const mobility::TraceRecord& b) {
                     return a.time_s < b.time_s;
                   });
  if (!records_.empty()) {
    earliest_ = records_.front().time_s;
    latest_ = records_.back().time_s;
  }
}

mobility::OccupancySnapshot TraceTimeline::WindowOccupancy(
    double t_begin, double t_end) const {
  mobility::OccupancySnapshot snapshot(segment_count_);
  std::unordered_set<std::uint32_t> seen_cars;
  const auto first = std::lower_bound(
      records_.begin(), records_.end(), t_begin,
      [](const mobility::TraceRecord& rec, double t) {
        return rec.time_s < t;
      });
  for (auto it = first; it != records_.end() && it->time_s <= t_end; ++it) {
    if (seen_cars.insert(it->car_id).second) {
      snapshot.Add(it->segment);
    }
  }
  return snapshot;
}

std::vector<std::vector<std::uint32_t>> TraceTimeline::WindowPresence(
    double t_begin, double t_end) const {
  std::vector<std::vector<std::uint32_t>> presence(segment_count_);
  const auto first = std::lower_bound(
      records_.begin(), records_.end(), t_begin,
      [](const mobility::TraceRecord& rec, double t) {
        return rec.time_s < t;
      });
  for (auto it = first; it != records_.end() && it->time_s <= t_end; ++it) {
    presence[roadnet::Index(it->segment)].push_back(it->car_id);
  }
  for (auto& cars : presence) {
    std::sort(cars.begin(), cars.end());
    cars.erase(std::unique(cars.begin(), cars.end()), cars.end());
  }
  return presence;
}

std::uint64_t WindowCounter::Count(const CloakRegion& region) const {
  std::unordered_set<std::uint32_t> distinct;
  for (const auto sid : region.segments_by_id()) {
    const auto& cars = presence_[roadnet::Index(sid)];
    distinct.insert(cars.begin(), cars.end());
  }
  return distinct.size();
}

StatusOr<TemporalCloakResult> TemporalCloak(Anonymizer& anonymizer,
                                            const TraceTimeline& timeline,
                                            const AnonymizeRequest& request,
                                            const crypto::KeyChain& keys,
                                            double request_time,
                                            double sigma_t, double step_s) {
  if (!(step_s > 0.0) || sigma_t < 0.0) {
    return Status::InvalidArgument(
        "temporal cloak: step_s must be positive, sigma_t non-negative");
  }
  TemporalCloakResult result;
  Status last_failure = Status::Internal("temporal cloak: no attempt ran");
  for (double deferral = 0.0; deferral <= sigma_t + 1e-9;
       deferral += step_s) {
    // Region-level distinct users over [t, t + deferral].
    const WindowCounter counter(timeline, request_time,
                                request_time + deferral);
    anonymizer.SetUserCounter(&counter);
    ++result.attempts;
    auto attempt = anonymizer.Anonymize(request, keys);
    anonymizer.SetUserCounter(nullptr);
    if (attempt.ok()) {
      result.spatial = std::move(attempt).value();
      result.deferral_s = deferral;
      return result;
    }
    if (attempt.status().code() != ErrorCode::kResourceExhausted) {
      return attempt.status();  // not a "wait for more users" failure
    }
    last_failure = attempt.status();
  }
  return Status::ResourceExhausted(
      "temporal cloak: sigma_t exhausted (" + last_failure.message() + ")");
}

}  // namespace rcloak::core
