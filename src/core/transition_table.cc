#include "core/transition_table.h"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace rcloak::core {

namespace {

// O(log n) rank lookup in a (length, id)-sorted span.
std::size_t SortedIndexOf(std::span<const SegmentId> sorted, SegmentId id,
                          const roadnet::RoadNetwork& net) {
  const auto it =
      std::lower_bound(sorted.begin(), sorted.end(), id, LengthOrder{&net});
  if (it == sorted.end() || *it != id) return sorted.size();
  return static_cast<std::size_t>(it - sorted.begin());
}

}  // namespace

TransitionTableView::TransitionTableView(std::span<const SegmentId> rows,
                                         std::span<const SegmentId> cols,
                                         const roadnet::RoadNetwork& net)
    : rows_(rows), cols_(cols), net_(&net) {
  assert(!cols_.empty() && "transition table needs candidates");
  assert(rows_.size() <= cols_.size() &&
         "collision-free regime requires |CloakA| <= |CanA| "
         "(use FrontierAtLeast)");
}

StatusOr<SegmentId> TransitionTableView::Forward(SegmentId last_added,
                                                 std::uint64_t draw) const {
  const std::size_t row = SortedIndexOf(rows_, last_added, *net_);
  if (row == rows_.size()) {
    return Status::InvalidArgument("segment is not a table row");
  }
  const std::size_t m = cols_.size();
  const std::size_t pick = static_cast<std::size_t>(draw % m);
  // Column j with (row + j) mod m == pick.
  const std::size_t col = (pick + m - row % m) % m;
  return cols_[col];
}

StatusOr<SegmentId> TransitionTableView::Backward(SegmentId last_removed,
                                                  std::uint64_t draw) const {
  const std::size_t col = SortedIndexOf(cols_, last_removed, *net_);
  if (col == cols_.size()) {
    return Status::InvalidArgument("segment is not a table column");
  }
  const std::size_t m = cols_.size();
  const std::size_t pick = static_cast<std::size_t>(draw % m);
  // Row i with (i + col) mod m == pick; unique because |rows| <= m.
  const std::size_t row = (pick + m - col % m) % m;
  if (row >= rows_.size()) {
    return Status::DataLoss(
        "backward transition resolves to no row: artifact/key mismatch");
  }
  return rows_[row];
}

TransitionTable::TransitionTable(std::vector<SegmentId> rows,
                                 std::vector<SegmentId> cols)
    : rows_(std::move(rows)), cols_(std::move(cols)) {
  assert(!cols_.empty() && "transition table needs candidates");
  assert(rows_.size() <= cols_.size() &&
         "collision-free regime requires |CloakA| <= |CanA| "
         "(use FrontierAtLeast)");
}

StatusOr<std::size_t> TransitionTable::RowIndexOf(SegmentId id) const {
  const auto it = std::find(rows_.begin(), rows_.end(), id);
  if (it == rows_.end()) {
    return Status::InvalidArgument("segment is not a table row");
  }
  return static_cast<std::size_t>(it - rows_.begin());
}

StatusOr<std::size_t> TransitionTable::ColIndexOf(SegmentId id) const {
  const auto it = std::find(cols_.begin(), cols_.end(), id);
  if (it == cols_.end()) {
    return Status::InvalidArgument("segment is not a table column");
  }
  return static_cast<std::size_t>(it - cols_.begin());
}

StatusOr<SegmentId> TransitionTable::Forward(SegmentId last_added,
                                             std::uint64_t draw) const {
  RCLOAK_ASSIGN_OR_RETURN(const std::size_t row, RowIndexOf(last_added));
  const std::size_t m = cols_.size();
  const std::size_t pick = static_cast<std::size_t>(draw % m);
  // Column j with (row + j) mod m == pick.
  const std::size_t col = (pick + m - row % m) % m;
  return cols_[col];
}

StatusOr<SegmentId> TransitionTable::Backward(SegmentId last_removed,
                                              std::uint64_t draw) const {
  RCLOAK_ASSIGN_OR_RETURN(const std::size_t col, ColIndexOf(last_removed));
  const std::size_t m = cols_.size();
  const std::size_t pick = static_cast<std::size_t>(draw % m);
  // Row i with (i + col) mod m == pick; unique because |rows| <= m.
  const std::size_t row = (pick + m - col % m) % m;
  if (row >= rows_.size()) {
    return Status::DataLoss(
        "backward transition resolves to no row: artifact/key mismatch");
  }
  return rows_[row];
}

std::vector<std::vector<std::uint32_t>> TransitionTable::Materialize() const {
  std::vector<std::vector<std::uint32_t>> table(
      rows_.size(), std::vector<std::uint32_t>(cols_.size(), 0));
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    for (std::size_t j = 0; j < cols_.size(); ++j) {
      table[i][j] = ValueAt(i, j);
    }
  }
  return table;
}

void TransitionTable::Print(std::ostream& os) const {
  os << "      ";
  for (SegmentId col : cols_) os << " s" << roadnet::Index(col);
  os << "\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    os << "s" << roadnet::Index(rows_[i]) << " |";
    for (std::size_t j = 0; j < cols_.size(); ++j) {
      os << "  " << ValueAt(i, j);
    }
    os << "\n";
  }
}

}  // namespace rcloak::core
