#include "core/walk_codec.h"

#include <algorithm>

namespace rcloak::core {

Bytes PackStepBits(const std::vector<bool>& added_bits,
                   const crypto::KeyedPrng& meta_prng) {
  const std::size_t packed = (added_bits.size() + 7) / 8;
  const std::size_t padded = ((packed + 15) / 16) * 16;
  Bytes out(std::max<std::size_t>(padded, 16), 0);
  for (std::size_t i = 0; i < added_bits.size(); ++i) {
    if (added_bits[i]) {
      out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] ^= static_cast<std::uint8_t>(meta_prng.Draw(i) & 0xFF);
  }
  return out;
}

StatusOr<Bytes> UnblindStepBits(const Bytes& step_bits_blinded,
                                const crypto::KeyedPrng& meta_prng,
                                std::uint32_t walk_len, const char* what) {
  const std::size_t needed = (static_cast<std::size_t>(walk_len) + 7) / 8;
  if (needed > step_bits_blinded.size()) {
    return Status::DataLoss(
        std::string(what) +
        " de-anonymize: walk length exceeds step-bit payload (wrong key or "
        "corrupt artifact)");
  }
  Bytes bits = step_bits_blinded;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] ^= static_cast<std::uint8_t>(meta_prng.Draw(i) & 0xFF);
  }
  return bits;
}

}  // namespace rcloak::core
