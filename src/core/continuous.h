// Continuous cloaking for moving users — single-user adapter.
//
// A cloaked artifact describes the origin segment at request time; once the
// user drives out of the cloaked region the artifact is stale. The standard
// policy (region validity) keeps one artifact alive while the user's
// current segment stays inside a chosen privacy level's region and
// re-cloaks on exit — trading update cost against how precisely an observer
// can track region changes. A fresh key chain per epoch keeps epochs
// unlinkable at the key level.
//
// The decision logic lives in the engine-free core::ContinuousPolicy
// (core/continuous_policy.h); ContinuousCloak is the thin adapter that
// binds one policy to one Anonymizer/Deanonymizer pair. It is kept both
// for API compatibility and as the single-user semantics oracle the
// server-side session pool (server/continuous_session_pool.h) is pinned
// against byte-for-byte.
#pragma once

#include <cstdint>
#include <functional>

#include "core/continuous_policy.h"
#include "core/reversecloak.h"

namespace rcloak::core {

// The validity region for `artifact`: the chosen level's region, computed
// once via the de-anonymizer (the owner holds all keys). When the validity
// level is the outermost level there is nothing to peel — the artifact's
// published region is the validity region, fingerprint/segment checks
// included, no keyed replay needed.
StatusOr<CloakRegion> ComputeValidityRegion(const Deanonymizer& deanonymizer,
                                            const CloakedArtifact& artifact,
                                            const crypto::KeyChain& keys,
                                            const PrivacyProfile& profile,
                                            int validity_level);

class ContinuousCloak {
 public:
  // `key_provider` supplies the key chain for each epoch (e.g. derive from
  // a master via the epoch counter, or RandomKeys).
  using KeyProvider = std::function<crypto::KeyChain(std::uint64_t epoch)>;

  ContinuousCloak(Anonymizer& anonymizer, Deanonymizer& deanonymizer,
                  PrivacyProfile profile, Algorithm algorithm,
                  std::string user_id, KeyProvider key_provider,
                  const ContinuousOptions& options = {});

  // Feeds a position update. Returns the artifact currently in force
  // (re-cloaked if the user left the validity region), or the
  // anonymization error.
  StatusOr<CloakedArtifact> Update(double now_s,
                                   roadnet::SegmentId current_segment);

  const ContinuousStats& stats() const noexcept { return policy_.stats(); }
  std::uint64_t epoch() const noexcept { return policy_.epoch(); }
  const ContinuousPolicy& policy() const noexcept { return policy_; }

 private:
  Anonymizer* anonymizer_;
  Deanonymizer* deanonymizer_;
  KeyProvider key_provider_;
  ContinuousPolicy policy_;
};

}  // namespace rcloak::core
