// Continuous cloaking for moving users.
//
// A cloaked artifact describes the origin segment at request time; once the
// user drives out of the cloaked region the artifact is stale. The standard
// policy (region validity) keeps one artifact alive while the user's
// current segment stays inside a chosen privacy level's region and
// re-cloaks on exit — trading update cost against how precisely an observer
// can track region changes. A fresh key chain per epoch keeps epochs
// unlinkable at the key level.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "core/reversecloak.h"
#include "util/stats.h"

namespace rcloak::core {

struct ContinuousOptions {
  // The artifact stays valid while the user is inside this level's region
  // (1 = innermost). Higher levels re-cloak less often but expose stale
  // positions for longer.
  int validity_level = 1;
  // Throttle: never re-cloak more often than this (seconds).
  double min_recloak_interval_s = 1.0;
};

struct ContinuousStats {
  std::uint64_t updates = 0;
  std::uint64_t recloaks = 0;
  std::uint64_t throttled_stale = 0;  // stale but within throttle window
  double last_recloak_time_s = 0.0;
  Samples validity_duration_s;
};

class ContinuousCloak {
 public:
  // `key_provider` supplies the key chain for each epoch (e.g. derive from
  // a master via the epoch counter, or RandomKeys).
  using KeyProvider = std::function<crypto::KeyChain(std::uint64_t epoch)>;

  ContinuousCloak(Anonymizer& anonymizer, Deanonymizer& deanonymizer,
                  PrivacyProfile profile, Algorithm algorithm,
                  std::string user_id, KeyProvider key_provider,
                  const ContinuousOptions& options = {});

  // Feeds a position update. Returns the artifact currently in force
  // (re-cloaked if the user left the validity region), or the
  // anonymization error.
  StatusOr<CloakedArtifact> Update(double now_s,
                                   roadnet::SegmentId current_segment);

  const ContinuousStats& stats() const noexcept { return stats_; }
  std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  Status Recloak(double now_s, roadnet::SegmentId origin);

  Anonymizer* anonymizer_;
  Deanonymizer* deanonymizer_;
  PrivacyProfile profile_;
  Algorithm algorithm_;
  std::string user_id_;
  KeyProvider key_provider_;
  ContinuousOptions options_;

  std::uint64_t epoch_ = 0;
  std::optional<CloakedArtifact> artifact_;
  std::optional<CloakRegion> validity_region_;
  double artifact_created_s_ = 0.0;
  ContinuousStats stats_;
};

}  // namespace rcloak::core
