// Reversible Pre-assignment-based Local Expansion (RPLE), paper §III-B.
//
// Phase 1 (pre-assignment): every segment is linked to T other segments and
// the links are arranged into a forward table FT and a backward table BT
// with the pairing invariant FT[s][j] = t  ⟺  BT[t][j] = s. The paper's
// greedy Algorithm 1 is implemented verbatim (PreassignGreedy); because
// greedy first-fit can leave empty slots — and any hole makes the keyed
// walk irreversible (a forward "skip" is undetectable backwards) — the
// production builder (BuildTransitionTables) completes the assignment into
// hole-free tables: it builds a T-regular link digraph (graph-adjacent
// neighbours first, then nearest-by-distance) and T-arc-colors it with
// Kempe-chain augmentation; the tail/head constraint graph is bipartite, so
// T colors always suffice (König). See DESIGN.md §3.
//
// Phase 2 (cloaking): a keyed random walk w_{j+1} = FT[w_j][R_j mod T]
// whose support is the cloaking region. Revisits are allowed — the walk has
// no data-dependent rejection, which is exactly what makes the reverse
// replay w_j = BT[w_{j+1}][R_j mod T] exact. Which steps introduced a new
// segment is recorded as key-blinded bits in the level record.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/artifact.h"
#include "core/cloak_region.h"
#include "core/privacy_profile.h"
#include "core/user_counter.h"
#include "crypto/keyed_prng.h"
#include "mobility/trace.h"
#include "roadnet/spatial_index.h"
#include "util/status.h"

namespace rcloak::core {

// Hole-free forward/backward transition tables for a road network.
class TransitionTables {
 public:
  std::uint32_t T() const noexcept { return t_; }
  std::size_t segment_count() const noexcept { return ft_.size() / t_; }

  SegmentId Forward(SegmentId s, std::uint32_t slot) const {
    return ft_[roadnet::Index(s) * t_ + slot];
  }
  SegmentId Backward(SegmentId s, std::uint32_t slot) const {
    return bt_[roadnet::Index(s) * t_ + slot];
  }

  // FT[s][j] = t ⟺ BT[t][j] = s, all slots filled, no self-links.
  Status ValidatePairing() const;

  // Approximate resident size (the RPLE memory-cost axis, experiment E6).
  std::size_t MemoryBytes() const noexcept {
    return (ft_.capacity() + bt_.capacity()) * sizeof(SegmentId);
  }

 private:
  friend StatusOr<TransitionTables> BuildTransitionTables(
      const roadnet::RoadNetwork&, const roadnet::SpatialIndex&,
      std::uint32_t, unsigned);
  std::uint32_t t_ = 0;
  std::vector<SegmentId> ft_;
  std::vector<SegmentId> bt_;
};

// Production pre-assignment (regularized links + arc coloring). Requires
// segment_count > 2*T. Deterministic in (network, T): anonymizer and
// de-anonymizer derive identical tables from their map copies.
//
// The preference pass (per-segment link candidates) is embarrassingly
// parallel and runs on `preassign_threads` threads (0 = one per hardware
// core); each thread writes only its own slots of the preference array, so
// the resulting tables are byte-identical for every thread count (pinned
// by transition_table_test.cc).
StatusOr<TransitionTables> BuildTransitionTables(
    const roadnet::RoadNetwork& net, const roadnet::SpatialIndex& index,
    std::uint32_t T, unsigned preassign_threads = 0);

// Paper Algorithm 1, verbatim greedy first-fit over per-segment neighbour
// lists. May leave holes; returned tables are for fidelity measurements
// (fill-rate ablation E12), not for production walks.
struct GreedyPreassignResult {
  std::vector<SegmentId> ft;  // kInvalidSegment = empty slot
  std::vector<SegmentId> bt;
  std::uint32_t T = 0;
  std::size_t filled_slots = 0;
  std::size_t total_slots = 0;
  double FillRate() const noexcept {
    return total_slots ? static_cast<double>(filled_slots) /
                             static_cast<double>(total_slots)
                       : 0.0;
  }
};
GreedyPreassignResult PreassignGreedy(const roadnet::RoadNetwork& net,
                                      const roadnet::SpatialIndex& index,
                                      std::uint32_t T,
                                      std::size_t neighbor_list_cap = 0);

struct RpleStats {
  std::uint64_t walk_steps = 0;
  std::uint64_t revisits = 0;
};

// Walk-based level expansion; mirrors RgeAnonymizeLevel's contract.
// `walk_position` is the chain seed (origin for level 1 / previous level's
// walk end) and is updated to this level's walk end on success.
StatusOr<LevelRecord> RpleAnonymizeLevel(
    const TransitionTables& tables, const UserCounter& users,
    CloakRegion& region, SegmentId& walk_position,
    const crypto::AccessKey& key, const std::string& context,
    int level_index, const LevelRequirement& requirement,
    RpleStats* stats = nullptr);

// Convenience overload for the instantaneous-snapshot case.
inline StatusOr<LevelRecord> RpleAnonymizeLevel(
    const TransitionTables& tables,
    const mobility::OccupancySnapshot& occupancy, CloakRegion& region,
    SegmentId& walk_position, const crypto::AccessKey& key,
    const std::string& context, int level_index,
    const LevelRequirement& requirement, RpleStats* stats = nullptr) {
  const SnapshotCounter counter(occupancy);
  return RpleAnonymizeLevel(tables, counter, region, walk_position, key,
                            context, level_index, requirement, stats);
}

// Reverse walk replay; removes this level's segments from `region`.
Status RpleDeanonymizeLevel(const TransitionTables& tables,
                            CloakRegion& region, const crypto::AccessKey& key,
                            const std::string& context, int level_index,
                            const LevelRecord& record);

}  // namespace rcloak::core
