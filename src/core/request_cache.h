// Request cache: the standard mitigation for multi-request correlation
// (attack/correlation.h). Repeated requests by the same user from the same
// origin within a TTL are answered with the *same* artifact instead of a
// fresh keyed expansion, so a keyless observer sees one region, not an
// intersectable family. The data owner keeps the epoch's key chain stable;
// when the TTL lapses (or the user moves), a fresh artifact is cut.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/reversecloak.h"

namespace rcloak::core {

class RequestCache {
 public:
  explicit RequestCache(double ttl_s) : ttl_s_(ttl_s) {}

  // Returns the cached artifact for (user, origin, algorithm, profile) if
  // fresh, otherwise anonymizes through `anonymizer` (with
  // request.context = "<user>/<epoch counter>") and caches the result.
  StatusOr<AnonymizeResult> GetOrAnonymize(Anonymizer& anonymizer,
                                           const std::string& user,
                                           const AnonymizeRequest& request,
                                           const crypto::KeyChain& keys,
                                           double now_s);

  std::size_t size() const noexcept { return entries_.size(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

  // Drops expired entries (call opportunistically).
  void EvictExpired(double now_s);

 private:
  static std::string CacheKey(const std::string& user,
                              const AnonymizeRequest& request);

  struct Entry {
    AnonymizeResult result;
    double expires_at = 0.0;
  };

  double ttl_s_;
  std::map<std::string, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t epoch_counter_ = 0;
};

}  // namespace rcloak::core
