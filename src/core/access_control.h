// Key management for data requesters (paper §IV): "The 'Anonymizer'
// maintains a personal access control profile, which decides the assignment
// of access keys based on trust degree and privileges of the location data
// requesters."
//
// Model: the data owner registers requesters with a privilege level p in
// [0, N]. A requester at privilege p may see the L^{N-p} region, so they
// are granted the keys of levels N, N-1, ..., N-p+1 (outermost-first —
// exactly the keys needed to peel down to their level, nothing more).
// Every grant is recorded in an audit log.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crypto/keyed_prng.h"
#include "util/status.h"

namespace rcloak::core {

struct KeyGrant {
  // Level index -> key, covering levels target_level+1 .. N.
  std::map<int, crypto::AccessKey> keys;
  // The most precise level this grant allows reducing to.
  int target_level = 0;
};

struct GrantRecord {
  std::string requester;
  int privilege = 0;
  int target_level = 0;
  std::uint64_t sequence = 0;  // monotonically increasing
};

class AccessControlProfile {
 public:
  explicit AccessControlProfile(crypto::KeyChain keys)
      : keys_(std::move(keys)) {}

  int num_levels() const noexcept { return keys_.num_levels(); }

  // Registers (or updates) a requester. Privilege must be in [0, N]:
  // 0 = may only see the public L^N region (no keys), N = full access.
  Status RegisterRequester(const std::string& name, int privilege);
  Status RevokeRequester(const std::string& name);
  StatusOr<int> PrivilegeOf(const std::string& name) const;

  // Grants the requester exactly the keys their privilege entitles them
  // to, and records the grant.
  StatusOr<KeyGrant> GrantKeys(const std::string& name);

  const std::vector<GrantRecord>& audit_log() const noexcept {
    return audit_log_;
  }

 private:
  crypto::KeyChain keys_;
  std::map<std::string, int> privileges_;
  std::vector<GrantRecord> audit_log_;
  std::uint64_t next_sequence_ = 1;
};

}  // namespace rcloak::core
