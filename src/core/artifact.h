// The cloaked artifact: what the trusted anonymizer uploads to the LBS
// provider and what data requesters de-anonymize level by level.
//
// Contents visible without any key:
//   * the segment set of the outermost (most private) cloaking region,
//     published sorted by id so insertion order leaks nothing;
//   * per-level region sizes (sizes are not locations);
//   * per-level opaque metadata (seal, walk length, step bits) — each
//     blinded with the level key's PRF/keystream, so without the key they
//     are uniformly distributed and carry no information (DESIGN.md §3).
//
// With Key_N, Key_{N-1}, ..., the region can be reduced level by level; the
// artifact is self-describing about algorithm and level count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cloak_region.h"
#include "roadnet/road_network.h"
#include "util/bytes.h"
#include "util/status.h"

namespace rcloak::core {

enum class Algorithm : std::uint8_t {
  kRge = 0,   // Reversible Global Expansion
  kRple = 1,  // Reversible Pre-assignment-based Local Expansion
  // Non-reversible random-expansion baseline (comparator workloads). Its
  // artifacts publish the outer region but cannot be reduced level by
  // level; Deanonymizer::Reduce reports Unimplemented for them.
  kRandomExpand = 2,
  // Grid/Hilbert-cell cloaking for the non-road-constrained case
  // (core/grid_cloak.h). Reversible; encodes with wire version 2 (older
  // decoders reject grid artifacts cleanly instead of misreading them).
  kGrid = 3,
};

std::string_view AlgorithmName(Algorithm algorithm) noexcept;

// Per-level opaque record.
struct LevelRecord {
  // |region| at this level, cumulative (clear).
  std::uint32_t region_size = 0;
  // Blinded rank of the level's last-added segment (RGE) / walk end (RPLE)
  // within the level region sorted by (length, id).
  std::uint64_t seal = 0;
  // RPLE only: walk length XOR PRF (fixed width), and the per-step
  // "added a new segment" bits XOR keystream, padded to blur length.
  std::uint32_t walk_len_blinded = 0;
  Bytes step_bits_blinded;
};

struct CloakedArtifact {
  Algorithm algorithm = Algorithm::kRge;
  // Request context: binds PRNG streams; e.g. "user42/req7". Public.
  std::string context;
  // Structural fingerprint of the road network the artifact was built on;
  // de-anonymization refuses to run against a different map.
  std::uint64_t map_fingerprint = 0;
  // Keyed-walk fan-out T: the RPLE transition-list length / the grid
  // cell-walk fan-out (0 for RGE and the baseline).
  std::uint32_t rple_T = 0;
  // Levels L^1..L^N in order.
  std::vector<LevelRecord> levels;
  // Outermost region (level N), segment ids sorted ascending.
  std::vector<SegmentId> region_segments;

  int num_levels() const noexcept { return static_cast<int>(levels.size()); }
};

// Structural fingerprint of a road network (SipHash over the geometry
// stream under a fixed public key — integrity check, not a MAC).
std::uint64_t FingerprintNetwork(const roadnet::RoadNetwork& net);

// Binary codec. Encode never fails; Decode validates structure.
Bytes EncodeArtifact(const CloakedArtifact& artifact);
StatusOr<CloakedArtifact> DecodeArtifact(const Bytes& data);

}  // namespace rcloak::core
