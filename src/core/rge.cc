#include "core/rge.h"

#include <algorithm>
#include <cassert>

#include "core/transition_table.h"
#include "core/walk_codec.h"

namespace rcloak::core {

std::uint64_t SealRank(const CloakRegion& region, SegmentId member,
                       const crypto::KeyedPrng& prng) {
  const std::uint64_t rank = region.LengthRankOf(member);
  assert(rank < region.size() && "seal member not in region");
  return (rank + prng.Prf("seal")) % region.size();
}

StatusOr<SegmentId> OpenSeal(const CloakRegion& region, std::uint64_t seal,
                             const crypto::KeyedPrng& prng) {
  if (region.empty()) return Status::DataLoss("seal over empty region");
  const std::uint64_t n = region.size();
  if (seal >= n) return Status::DataLoss("seal out of range");
  const std::uint64_t blind = prng.Prf("seal") % n;
  const std::uint64_t rank = (seal + n - blind) % n;
  return region.LengthSorted()[static_cast<std::size_t>(rank)];
}

StatusOr<LevelRecord> RgeAnonymizeLevel(
    const UserCounter& users, CloakRegion& region, SegmentId& last_added,
    const crypto::AccessKey& key, const std::string& context,
    int level_index, const LevelRequirement& requirement, RgeStats* stats) {
  if (region.empty()) {
    return Status::FailedPrecondition("RGE level expansion on empty region");
  }
  const crypto::KeyedPrng prng(key, LevelStreamContext(context, level_index));

  // Snapshot for rollback on failure.
  const std::vector<SegmentId> region_before = region.segments_by_id();
  const SegmentId last_added_before = last_added;
  auto rollback = [&] {
    region = CloakRegion::FromSegments(region.network(), region_before);
    last_added = last_added_before;
  };

  std::uint64_t transition = 0;
  while (!LevelSatisfied(region, users, requirement)) {
    int rings = 0;
    const auto candidates = region.FrontierAtLeast(region.size(), &rings);
    if (candidates.size() < region.size()) {
      rollback();
      return Status::ResourceExhausted(
          "RGE: candidate set cannot reach region size (component too "
          "small for collision-free expansion)");
    }
    if (stats != nullptr) {
      ++stats->transitions;
      if (rings > 1) ++stats->ring_fallbacks;
      stats->max_rings = std::max(stats->max_rings, rings);
    }
    const TransitionTableView table(region.LengthSorted(), candidates,
                                    region.network());
    const auto next = table.Forward(last_added, prng.Draw(transition));
    if (!next.ok()) {
      rollback();
      return next.status();
    }
    region.Insert(*next);
    last_added = *next;
    ++transition;
    if (region.Bounds().Diagonal() > requirement.sigma_s) {
      rollback();
      return Status::ResourceExhausted(
          "RGE: spatial tolerance sigma_s exceeded before reaching "
          "(delta_k, delta_l)");
    }
  }

  LevelRecord record;
  record.region_size = static_cast<std::uint32_t>(region.size());
  record.seal = SealRank(region, last_added, prng);
  return record;
}

Status RgeDeanonymizeLevel(CloakRegion& region, const crypto::AccessKey& key,
                           const std::string& context, int level_index,
                           const LevelRecord& record,
                           std::uint32_t prev_region_size) {
  if (region.size() != record.region_size) {
    return Status::FailedPrecondition(
        "RGE de-anonymize: region size does not match level record");
  }
  if (prev_region_size > record.region_size) {
    return Status::DataLoss("RGE de-anonymize: level sizes not monotone");
  }
  const std::uint64_t to_remove = record.region_size - prev_region_size;
  if (to_remove == 0) return Status::Ok();

  const crypto::KeyedPrng prng(key, LevelStreamContext(context, level_index));
  RCLOAK_ASSIGN_OR_RETURN(SegmentId current, OpenSeal(region, record.seal, prng));

  // Remove λ_n .. λ_1; transition j (1-based) used draw j-1.
  for (std::uint64_t j = to_remove; j >= 1; --j) {
    if (!region.Contains(current)) {
      return Status::DataLoss(
          "RGE de-anonymize: chain left the region (wrong key or corrupt "
          "artifact)");
    }
    region.Erase(current);
    if (j == 1) break;  // λ_0 (the lower level's chain seed) is not needed
    const auto candidates = region.FrontierAtLeast(region.size(), nullptr);
    if (candidates.size() < region.size()) {
      return Status::DataLoss(
          "RGE de-anonymize: candidate set shrank below region size");
    }
    const TransitionTableView table(region.LengthSorted(), candidates,
                                    region.network());
    RCLOAK_ASSIGN_OR_RETURN(current, table.Backward(current, prng.Draw(j - 1)));
  }
  return Status::Ok();
}

}  // namespace rcloak::core
