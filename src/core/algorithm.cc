#include "core/algorithm.h"

#include <algorithm>
#include <mutex>
#include <span>
#include <vector>

#include "baseline/random_expand.h"

namespace rcloak::core {

Status CloakAlgorithm::Begin(const MapContext&, EngineSession&,
                             std::uint32_t) const {
  return Status::Ok();
}

Status CloakAlgorithm::BeginReduce(const MapContext&, const CloakedArtifact&,
                                   ReduceSession&) const {
  return Status::Ok();
}

namespace {

class RgeStrategy final : public CloakAlgorithm {
 public:
  Algorithm id() const noexcept override { return Algorithm::kRge; }
  std::string_view name() const noexcept override { return "RGE"; }

  StatusOr<LevelRecord> AnonymizeLevel(
      const MapContext&, EngineSession& session, const crypto::AccessKey& key,
      const std::string& request_context, int level_index,
      const LevelRequirement& requirement) const override {
    return RgeAnonymizeLevel(*session.users, session.region, session.chain,
                             key, request_context, level_index, requirement,
                             &session.rge_stats);
  }

  Status DeanonymizeLevel(const MapContext&, const CloakedArtifact& artifact,
                          ReduceSession&, CloakRegion& region,
                          const crypto::AccessKey& key, int level_index,
                          const LevelRecord& record,
                          std::uint32_t prev_region_size) const override {
    return RgeDeanonymizeLevel(region, key, artifact.context, level_index,
                               record, prev_region_size);
  }
};

class RpleStrategy final : public CloakAlgorithm {
 public:
  Algorithm id() const noexcept override { return Algorithm::kRple; }
  std::string_view name() const noexcept override { return "RPLE"; }

  Status Begin(const MapContext& ctx, EngineSession& session,
               std::uint32_t rple_T) const override {
    if (session.tables != nullptr && session.tables_T == rple_T) {
      return Status::Ok();  // resolved by an earlier request, still valid
    }
    RCLOAK_ASSIGN_OR_RETURN(session.tables, ctx.TablesFor(rple_T));
    session.tables_T = rple_T;
    return Status::Ok();
  }

  StatusOr<LevelRecord> AnonymizeLevel(
      const MapContext&, EngineSession& session, const crypto::AccessKey& key,
      const std::string& request_context, int level_index,
      const LevelRequirement& requirement) const override {
    if (session.tables == nullptr) {
      return Status::Internal("RPLE: session has no tables (Begin not run)");
    }
    return RpleAnonymizeLevel(*session.tables, *session.users, session.region,
                              session.chain, key, request_context, level_index,
                              requirement, &session.rple_stats);
  }

  Status BeginReduce(const MapContext& ctx, const CloakedArtifact& artifact,
                     ReduceSession& session) const override {
    if (session.tables != nullptr && session.tables_T == artifact.rple_T) {
      return Status::Ok();  // resolved by an earlier artifact, still valid
    }
    RCLOAK_ASSIGN_OR_RETURN(session.tables, ctx.TablesFor(artifact.rple_T));
    session.tables_T = artifact.rple_T;
    return Status::Ok();
  }

  Status DeanonymizeLevel(const MapContext&, const CloakedArtifact& artifact,
                          ReduceSession& session, CloakRegion& region,
                          const crypto::AccessKey& key, int level_index,
                          const LevelRecord& record,
                          std::uint32_t prev_region_size) const override {
    if (session.tables == nullptr) {
      return Status::Internal("RPLE: reduce has no tables (BeginReduce "
                              "not run)");
    }
    RCLOAK_RETURN_IF_ERROR(RpleDeanonymizeLevel(
        *session.tables, region, key, artifact.context, level_index, record));
    if (region.size() != prev_region_size) {
      return Status::DataLoss(
          "RPLE de-anonymize: reduced region size mismatch (wrong key or "
          "corrupt artifact)");
    }
    return Status::Ok();
  }
};

class RandomExpandStrategy final : public CloakAlgorithm {
 public:
  Algorithm id() const noexcept override { return Algorithm::kRandomExpand; }
  std::string_view name() const noexcept override { return "RandomExpand"; }
  bool reversible() const noexcept override { return false; }

  StatusOr<LevelRecord> AnonymizeLevel(
      const MapContext&, EngineSession& session, const crypto::AccessKey& key,
      const std::string& request_context, int level_index,
      const LevelRequirement& requirement) const override {
    // The baseline's RNG is public and non-cryptographic; seeding it from
    // the keyed per-level stream keeps requests deterministic in
    // (key, context, level) like the reversible strategies.
    const crypto::KeyedPrng prng(
        key, request_context + "/L" + std::to_string(level_index));
    const std::vector<SegmentId> region_before =
        session.region.segments_by_id();
    baseline::BaselineStats stats;
    const Status expanded = baseline::RandomExpandLevel(
        *session.users, session.region, requirement, prng.Draw(0), &stats);
    session.baseline_expansions += stats.expansions;
    if (!expanded.ok()) {
      session.region = CloakRegion::FromSegments(session.region.network(),
                                                 region_before);
      return expanded;
    }
    LevelRecord record;
    record.region_size = static_cast<std::uint32_t>(session.region.size());
    return record;
  }

  Status DeanonymizeLevel(const MapContext&, const CloakedArtifact&,
                          ReduceSession&, CloakRegion&,
                          const crypto::AccessKey&, int, const LevelRecord&,
                          std::uint32_t) const override {
    return Status::Unimplemented(
        "RandomExpand baseline is non-reversible: its artifacts cannot be "
        "reduced level by level");
  }
};

class GridStrategy final : public CloakAlgorithm {
 public:
  Algorithm id() const noexcept override { return Algorithm::kGrid; }
  std::string_view name() const noexcept override { return "Grid"; }

  Status Begin(const MapContext& ctx, EngineSession& session,
               std::uint32_t rple_T) const override {
    if (session.grid == nullptr) {
      RCLOAK_ASSIGN_OR_RETURN(session.grid, ctx.GridFor());
    }
    if (session.grid_tables == nullptr || session.grid_tables_T != rple_T) {
      RCLOAK_ASSIGN_OR_RETURN(session.grid_tables,
                              session.grid->TablesFor(rple_T));
      session.grid_tables_T = rple_T;
    }
    // The cell-walk chain starts at the origin's cell (session.chain is
    // the origin right after Reset).
    session.grid_cell = session.grid->CellOf(session.chain);
    return Status::Ok();
  }

  StatusOr<LevelRecord> AnonymizeLevel(
      const MapContext&, EngineSession& session, const crypto::AccessKey& key,
      const std::string& request_context, int level_index,
      const LevelRequirement& requirement) const override {
    if (session.grid == nullptr || session.grid_tables == nullptr) {
      return Status::Internal("grid: session has no grid (Begin not run)");
    }
    return GridAnonymizeLevel(*session.grid, *session.grid_tables,
                              *session.users, session.region,
                              session.grid_cell, key, request_context,
                              level_index, requirement, &session.grid_stats);
  }

  Status BeginReduce(const MapContext& ctx, const CloakedArtifact& artifact,
                     ReduceSession& session) const override {
    if (session.grid == nullptr) {
      RCLOAK_ASSIGN_OR_RETURN(session.grid, ctx.GridFor());
    }
    if (session.grid_tables != nullptr &&
        session.grid_tables_T == artifact.rple_T) {
      return Status::Ok();  // resolved by an earlier artifact, still valid
    }
    RCLOAK_ASSIGN_OR_RETURN(session.grid_tables,
                            session.grid->TablesFor(artifact.rple_T));
    session.grid_tables_T = artifact.rple_T;
    return Status::Ok();
  }

  Status DeanonymizeLevel(const MapContext&, const CloakedArtifact& artifact,
                          ReduceSession& session, CloakRegion& region,
                          const crypto::AccessKey& key, int level_index,
                          const LevelRecord& record,
                          std::uint32_t prev_region_size) const override {
    if (session.grid == nullptr || session.grid_tables == nullptr) {
      return Status::Internal(
          "grid: reduce has no grid (BeginReduce not run)");
    }
    RCLOAK_RETURN_IF_ERROR(GridDeanonymizeLevel(
        *session.grid, *session.grid_tables, region, key, artifact.context,
        level_index, record));
    if (region.size() != prev_region_size) {
      return Status::DataLoss(
          "grid de-anonymize: reduced region size mismatch (wrong key or "
          "corrupt artifact)");
    }
    return Status::Ok();
  }
};

// The built-ins resolve lock-free (magic-static init, immutable after):
// FindAlgorithm sits on every request's hot path and must not become a
// process-wide serialization point. Only out-of-tree registrations — rare,
// typically startup-only — go through the mutex-guarded extras list.
std::span<const CloakAlgorithm* const> Builtins() {
  static const RgeStrategy rge;
  static const RpleStrategy rple;
  static const RandomExpandStrategy random_expand;
  static const GridStrategy grid;
  static const CloakAlgorithm* const builtins[] = {&rge, &rple,
                                                   &random_expand, &grid};
  return builtins;
}

std::mutex& ExtrasMutex() {
  static std::mutex mutex;
  return mutex;
}

std::vector<const CloakAlgorithm*>& Extras() {
  static std::vector<const CloakAlgorithm*> extras;
  return extras;
}

}  // namespace

const CloakAlgorithm* FindAlgorithm(Algorithm id) noexcept {
  for (const CloakAlgorithm* algorithm : Builtins()) {
    if (algorithm->id() == id) return algorithm;
  }
  std::lock_guard<std::mutex> lock(ExtrasMutex());
  for (const CloakAlgorithm* algorithm : Extras()) {
    if (algorithm->id() == id) return algorithm;
  }
  return nullptr;
}

std::vector<const CloakAlgorithm*> RegisteredAlgorithms() {
  std::vector<const CloakAlgorithm*> all(Builtins().begin(),
                                         Builtins().end());
  std::lock_guard<std::mutex> lock(ExtrasMutex());
  all.insert(all.end(), Extras().begin(), Extras().end());
  return all;
}

Status RegisterAlgorithm(const CloakAlgorithm* algorithm) {
  if (algorithm == nullptr) {
    return Status::InvalidArgument("cannot register null algorithm");
  }
  for (const CloakAlgorithm* existing : Builtins()) {
    if (existing->id() == algorithm->id()) {
      return Status::InvalidArgument("algorithm id already registered: " +
                                     std::string(existing->name()));
    }
  }
  std::lock_guard<std::mutex> lock(ExtrasMutex());
  for (const CloakAlgorithm* existing : Extras()) {
    if (existing->id() == algorithm->id()) {
      return Status::InvalidArgument("algorithm id already registered: " +
                                     std::string(existing->name()));
    }
  }
  Extras().push_back(algorithm);
  return Status::Ok();
}

}  // namespace rcloak::core
