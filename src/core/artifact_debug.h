// Human-readable artifact inspection (what an operator can see WITHOUT any
// keys — the dump deliberately shows only public fields and opaque blobs'
// sizes, mirroring the adversary's view).
#pragma once

#include <iosfwd>
#include <string>

#include "core/artifact.h"

namespace rcloak::core {

// Multi-line description of the public artifact contents.
std::string DescribeArtifact(const CloakedArtifact& artifact);
void PrintArtifact(std::ostream& os, const CloakedArtifact& artifact);

}  // namespace rcloak::core
