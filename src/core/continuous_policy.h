// Continuous-cloaking policy: the pure, engine-free state machine behind
// moving-user cloaking.
//
// A ContinuousPolicy owns everything about one user's continuous session
// that is NOT engine work: the artifact currently in force, its validity
// region, the re-cloak throttle, the epoch counter that advances the
// per-epoch key chain, and the session statistics. It never touches an
// Anonymizer or Deanonymizer — classification (`OnUpdate`) is a pure
// function of the stored state, and the caller performs the engine work a
// kRecloak decision demands before committing the result back.
//
// Two drivers share this state machine and therefore agree bit-for-bit on
// when to re-cloak and what request context each epoch uses:
//   * core::ContinuousCloak   — the single-user adapter (core/continuous.h),
//     kept as the API-compatible semantics oracle;
//   * server::ContinuousSessionPool — thousands of policies sharded over
//     the anonymization server (server/continuous_session_pool.h).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/artifact.h"
#include "core/cloak_region.h"
#include "core/privacy_profile.h"
#include "util/bytes.h"
#include "util/stats.h"

namespace rcloak::core {

struct ContinuousOptions {
  // The artifact stays valid while the user is inside this level's region
  // (1 = innermost). Higher levels re-cloak less often but expose stale
  // positions for longer.
  int validity_level = 1;
  // Throttle: never re-cloak more often than this (seconds).
  double min_recloak_interval_s = 1.0;
};

struct ContinuousStats {
  std::uint64_t updates = 0;
  std::uint64_t recloaks = 0;
  std::uint64_t throttled_stale = 0;  // stale but within throttle window
  double last_recloak_time_s = 0.0;
  Samples validity_duration_s;
};

// Compact validity region: the sorted segment-id set of the level region
// that keeps the artifact in force valid. A resident session only ever
// asks "is this segment inside?", so storing the full CloakRegion engine
// (dense per-network membership bitmap plus frontier caches) would make
// every parked session cost O(|network|) bytes — fatal to the million-
// session memory story. A sorted vector + binary search answers Contains
// bit-identically at O(|region|) bytes.
class ValidityRegion {
 public:
  ValidityRegion() = default;
  // Takes any segment list; stored sorted ascending by id (the canonical
  // published order, matching CloakRegion::segments_by_id()).
  explicit ValidityRegion(std::vector<roadnet::SegmentId> segments);

  bool Contains(roadnet::SegmentId id) const noexcept;

  const std::vector<roadnet::SegmentId>& segments_by_id() const noexcept {
    return segments_;
  }

  std::size_t memory_bytes() const noexcept {
    return segments_.capacity() * sizeof(roadnet::SegmentId);
  }

 private:
  std::vector<roadnet::SegmentId> segments_;
};

class ContinuousPolicy {
 public:
  enum class Action : std::uint8_t {
    // The artifact in force still covers the position: serve `artifact()`.
    kServe,
    // Outside the validity region but inside the throttle window: serve the
    // stale `artifact()` (the region still k-anonymizes the previous
    // position; position lag is the documented cost of throttling).
    kServeStale,
    // A fresh artifact must be cut at this position for `next_epoch()`,
    // under the request context `EpochContext(next_epoch())`, then
    // installed with `CommitRecloak`. Until then the policy state is
    // unchanged (a failed engine call leaves the session as it was).
    kRecloak,
  };

  ContinuousPolicy(std::string user_id, PrivacyProfile profile,
                   Algorithm algorithm, const ContinuousOptions& options = {})
      : user_id_(std::move(user_id)),
        profile_(std::move(profile)),
        algorithm_(algorithm),
        options_(options) {}

  // Classifies a position update (and bumps the update / throttled-stale
  // counters). On kRecloak the caller runs the engine and either commits or
  // drops the attempt.
  Action OnUpdate(double now_s, roadnet::SegmentId current_segment);

  // The epoch a kRecloak decision cloaks under (one past the epoch in
  // force; the per-epoch key chain is derived from this counter).
  std::uint64_t next_epoch() const noexcept { return epoch_ + 1; }

  // Public request context binding the PRNG streams of one epoch:
  // "<user_id>/epoch-<epoch>".
  std::string EpochContext(std::uint64_t epoch) const;

  // The level whose region keeps the artifact valid, clamped to the
  // profile's level count.
  int validity_level() const noexcept {
    return std::min(options_.validity_level, profile_.num_levels());
  }

  // Installs the artifact cut for `next_epoch()` and its validity region,
  // advancing the epoch and the re-cloak statistics. The shared overload
  // adopts an already-wrapped artifact without re-copying (the session
  // pool shares one wrapping between the commit and the serve result).
  void CommitRecloak(double now_s, CloakedArtifact artifact,
                     CloakRegion validity_region);
  void CommitRecloak(double now_s,
                     std::shared_ptr<const CloakedArtifact> artifact,
                     CloakRegion validity_region);

  // Spill/restore: serializes the complete session state — identity,
  // profile, options, epoch counter, artifact in force, validity region,
  // clocks and statistics — so an idle session can leave memory and a
  // returning user resumes its epoch chain bit-for-bit (the restored
  // policy's decision and artifact sequence is byte-identical to one that
  // never left; pinned in tests/session_pool_test.cc). Key material is
  // deliberately NOT serialized: the caller re-supplies its KeyProvider on
  // restore.
  Bytes Serialize() const;
  // `net` rebuilds the validity region (regions are stored as segment
  // lists) and must be the network the artifact was cut on.
  static StatusOr<ContinuousPolicy> Deserialize(
      const Bytes& data, const roadnet::RoadNetwork& net);

  const std::string& user_id() const noexcept { return user_id_; }
  const PrivacyProfile& profile() const noexcept { return profile_; }
  Algorithm algorithm() const noexcept { return algorithm_; }
  const ContinuousOptions& options() const noexcept { return options_; }
  std::uint64_t epoch() const noexcept { return epoch_; }
  // The artifact in force (null before the first successful re-cloak),
  // shared immutably: the steady-state serve path hands out refcounted
  // references instead of deep-copying level records and segment lists on
  // every in-region update.
  const std::shared_ptr<const CloakedArtifact>& artifact() const noexcept {
    return artifact_;
  }
  const ContinuousStats& stats() const noexcept { return stats_; }

  // Approximate heap footprint of the session state this policy retains —
  // identity, profile, artifact in force, validity region, stats samples.
  // An estimate for the session pool's memory-budget accounting, not
  // malloc truth.
  std::size_t MemoryFootprint() const noexcept;

 private:
  // Deserialize fills every field directly.
  ContinuousPolicy() = default;

  std::string user_id_;
  PrivacyProfile profile_;
  Algorithm algorithm_;
  ContinuousOptions options_;

  std::uint64_t epoch_ = 0;
  std::shared_ptr<const CloakedArtifact> artifact_;
  std::optional<ValidityRegion> validity_region_;
  double artifact_created_s_ = 0.0;
  ContinuousStats stats_;
};

}  // namespace rcloak::core
