// Reversible Global Expansion (RGE), paper §III-A.
//
// Anonymization is a sequence of keyed forward transitions: at each step a
// transition table over (current region, candidate frontier) is built and
// the pseudo-random pick value selects the next segment from the last-added
// segment's row. De-anonymization replays the identical tables backwards:
// after removing the last-added segment, the table at the *resulting* state
// maps the removed segment's column back to the previously added segment —
// exactly the two directions of Fig. 2.
//
// Collision handling: the table is collision-free iff |CloakA| <= |CanA|;
// when the ring-1 frontier is too small the candidate set is
// deterministically expanded ring by ring ("links rebuilt on the fly"),
// which both directions recompute identically from the region state.
#pragma once

#include <cstdint>
#include <string>

#include "core/artifact.h"
#include "core/cloak_region.h"
#include "core/privacy_profile.h"
#include "core/user_counter.h"
#include "crypto/keyed_prng.h"
#include "mobility/trace.h"

namespace rcloak::core {

// Instrumentation of one anonymization run (ablation E11).
struct RgeStats {
  std::uint64_t transitions = 0;
  // Transitions whose candidate set needed more than ring 1.
  std::uint64_t ring_fallbacks = 0;
  int max_rings = 0;
};

// Expands `region` in place until `requirement` holds (>= delta_k users,
// >= delta_l segments, bounding-box diagonal <= sigma_s).
//
// `last_added` is the chain seed: the origin segment for level 1, or the
// previous level's last-added segment; on success it is updated to this
// level's last-added segment. `level_index` is the 1-based level, used to
// derive the per-level PRNG stream from (key, context).
//
// Returns the level record (size + seal) on success; the region and
// last_added are rolled back on failure.
StatusOr<LevelRecord> RgeAnonymizeLevel(
    const UserCounter& users, CloakRegion& region, SegmentId& last_added,
    const crypto::AccessKey& key, const std::string& context,
    int level_index, const LevelRequirement& requirement,
    RgeStats* stats = nullptr);

// Convenience overload for the common instantaneous-snapshot case.
inline StatusOr<LevelRecord> RgeAnonymizeLevel(
    const mobility::OccupancySnapshot& occupancy, CloakRegion& region,
    SegmentId& last_added, const crypto::AccessKey& key,
    const std::string& context, int level_index,
    const LevelRequirement& requirement, RgeStats* stats = nullptr) {
  const SnapshotCounter counter(occupancy);
  return RgeAnonymizeLevel(counter, region, last_added, key, context,
                           level_index, requirement, stats);
}

// Removes this level's segments from `region` (which must currently be the
// level-`level_index` region). `prev_region_size` is the size of the next
// lower level (1 for L0). On success the region equals the lower level's
// region. Purely structural: needs no occupancy data.
Status RgeDeanonymizeLevel(CloakRegion& region, const crypto::AccessKey& key,
                           const std::string& context, int level_index,
                           const LevelRecord& record,
                           std::uint32_t prev_region_size);

// Seal helpers shared with RPLE (blinded rank within the length-sorted
// region).
std::uint64_t SealRank(const CloakRegion& region, SegmentId member,
                       const crypto::KeyedPrng& prng);
StatusOr<SegmentId> OpenSeal(const CloakRegion& region, std::uint64_t seal,
                             const crypto::KeyedPrng& prng);

}  // namespace rcloak::core
