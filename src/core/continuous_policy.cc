#include "core/continuous_policy.h"

#include <algorithm>
#include <bit>

#include "roadnet/road_network.h"

namespace rcloak::core {

namespace {

// Spill blob format version (bumped on any layout change).
constexpr std::uint8_t kPolicyBlobVersion = 1;

void PutDouble(Bytes& out, double v) {
  PutU64le(out, std::bit_cast<std::uint64_t>(v));
}

std::optional<double> GetDouble(const Bytes& in, std::size_t* offset) {
  const auto bits = GetU64le(in, offset);
  if (!bits) return std::nullopt;
  return std::bit_cast<double>(*bits);
}

Status Truncated() { return Status::DataLoss("policy blob truncated"); }

}  // namespace

ValidityRegion::ValidityRegion(std::vector<roadnet::SegmentId> segments)
    : segments_(std::move(segments)) {
  std::sort(segments_.begin(), segments_.end(),
            [](roadnet::SegmentId a, roadnet::SegmentId b) {
              return roadnet::Index(a) < roadnet::Index(b);
            });
}

bool ValidityRegion::Contains(roadnet::SegmentId id) const noexcept {
  return std::binary_search(segments_.begin(), segments_.end(), id,
                            [](roadnet::SegmentId a, roadnet::SegmentId b) {
                              return roadnet::Index(a) < roadnet::Index(b);
                            });
}

std::string ContinuousPolicy::EpochContext(std::uint64_t epoch) const {
  return user_id_ + "/epoch-" + std::to_string(epoch);
}

ContinuousPolicy::Action ContinuousPolicy::OnUpdate(
    double now_s, roadnet::SegmentId current_segment) {
  ++stats_.updates;
  const bool have = artifact_ != nullptr;
  const bool inside =
      have && validity_region_ && validity_region_->Contains(current_segment);
  if (inside) return Action::kServe;
  const bool throttled =
      have && (now_s - stats_.last_recloak_time_s <
               options_.min_recloak_interval_s);
  if (throttled) {
    ++stats_.throttled_stale;
    return Action::kServeStale;
  }
  return Action::kRecloak;
}

void ContinuousPolicy::CommitRecloak(double now_s, CloakedArtifact artifact,
                                     CloakRegion validity_region) {
  CommitRecloak(now_s,
                std::make_shared<const CloakedArtifact>(std::move(artifact)),
                std::move(validity_region));
}

void ContinuousPolicy::CommitRecloak(
    double now_s, std::shared_ptr<const CloakedArtifact> artifact,
    CloakRegion validity_region) {
  if (artifact_) {
    stats_.validity_duration_s.Add(now_s - artifact_created_s_);
  }
  ++epoch_;
  artifact_ = std::move(artifact);
  // Keep only the segment set: the CloakRegion engine state (bitmap,
  // frontier caches) is per-network-sized and dies here.
  validity_region_ = ValidityRegion(validity_region.segments_by_id());
  artifact_created_s_ = now_s;
  stats_.last_recloak_time_s = now_s;
  ++stats_.recloaks;
}

Bytes ContinuousPolicy::Serialize() const {
  Bytes out;
  out.push_back(kPolicyBlobVersion);
  PutVarint(out, user_id_.size());
  out.insert(out.end(), user_id_.begin(), user_id_.end());
  out.push_back(static_cast<std::uint8_t>(algorithm_));
  PutVarint(out, static_cast<std::uint64_t>(profile_.num_levels()));
  for (int level = 1; level <= profile_.num_levels(); ++level) {
    const LevelRequirement& req = profile_.level(level);
    PutVarint(out, req.delta_k);
    PutVarint(out, req.delta_l);
    PutDouble(out, req.sigma_s);
  }
  PutVarint(out, static_cast<std::uint64_t>(options_.validity_level));
  PutDouble(out, options_.min_recloak_interval_s);
  PutVarint(out, epoch_);
  out.push_back(artifact_ ? 1 : 0);
  if (artifact_) {
    const Bytes encoded = EncodeArtifact(*artifact_);
    PutVarint(out, encoded.size());
    out.insert(out.end(), encoded.begin(), encoded.end());
  }
  out.push_back(validity_region_ ? 1 : 0);
  if (validity_region_) {
    const auto& segments = validity_region_->segments_by_id();
    PutVarint(out, segments.size());
    for (const roadnet::SegmentId sid : segments) {
      PutVarint(out, roadnet::Index(sid));
    }
  }
  PutDouble(out, artifact_created_s_);
  PutVarint(out, stats_.updates);
  PutVarint(out, stats_.recloaks);
  PutVarint(out, stats_.throttled_stale);
  PutDouble(out, stats_.last_recloak_time_s);
  PutVarint(out, stats_.validity_duration_s.count());
  for (const double sample : stats_.validity_duration_s.data()) {
    PutDouble(out, sample);
  }
  return out;
}

StatusOr<ContinuousPolicy> ContinuousPolicy::Deserialize(
    const Bytes& data, const roadnet::RoadNetwork& net) {
  std::size_t offset = 0;
  if (data.empty() || data[offset++] != kPolicyBlobVersion) {
    return Status::InvalidArgument("policy blob: bad magic/version");
  }
  ContinuousPolicy policy;
  const auto id_length = GetVarint(data, &offset);
  // Subtract-side compare: a hostile length near 2^64 must not wrap.
  if (!id_length || *id_length > data.size() - offset) return Truncated();
  policy.user_id_.assign(
      reinterpret_cast<const char*>(data.data()) + offset,
      static_cast<std::size_t>(*id_length));
  offset += *id_length;
  if (offset >= data.size()) return Truncated();
  policy.algorithm_ = static_cast<Algorithm>(data[offset++]);
  const auto num_levels = GetVarint(data, &offset);
  if (!num_levels) return Truncated();
  std::vector<LevelRequirement> levels;
  for (std::uint64_t i = 0; i < *num_levels; ++i) {
    LevelRequirement req;
    const auto delta_k = GetVarint(data, &offset);
    const auto delta_l = GetVarint(data, &offset);
    const auto sigma_s = GetDouble(data, &offset);
    if (!delta_k || !delta_l || !sigma_s) return Truncated();
    req.delta_k = static_cast<std::uint32_t>(*delta_k);
    req.delta_l = static_cast<std::uint32_t>(*delta_l);
    req.sigma_s = *sigma_s;
    levels.push_back(req);
  }
  policy.profile_ = PrivacyProfile(std::move(levels));
  RCLOAK_RETURN_IF_ERROR(policy.profile_.Validate());
  const auto validity_level = GetVarint(data, &offset);
  const auto throttle_s = GetDouble(data, &offset);
  const auto epoch = GetVarint(data, &offset);
  if (!validity_level || !throttle_s || !epoch) return Truncated();
  policy.options_.validity_level = static_cast<int>(*validity_level);
  policy.options_.min_recloak_interval_s = *throttle_s;
  policy.epoch_ = *epoch;
  if (offset >= data.size()) return Truncated();
  if (data[offset++] != 0) {
    const auto artifact_size = GetVarint(data, &offset);
    if (!artifact_size || *artifact_size > data.size() - offset) {
      return Truncated();
    }
    const Bytes encoded(data.begin() + static_cast<std::ptrdiff_t>(offset),
                        data.begin() + static_cast<std::ptrdiff_t>(
                                           offset + *artifact_size));
    offset += *artifact_size;
    RCLOAK_ASSIGN_OR_RETURN(auto artifact, DecodeArtifact(encoded));
    policy.artifact_ =
        std::make_shared<const CloakedArtifact>(std::move(artifact));
  }
  if (offset >= data.size()) return Truncated();
  if (data[offset++] != 0) {
    const auto segment_count = GetVarint(data, &offset);
    if (!segment_count) return Truncated();
    std::vector<roadnet::SegmentId> segments;
    for (std::uint64_t i = 0; i < *segment_count; ++i) {
      const auto raw = GetVarint(data, &offset);
      if (!raw) return Truncated();
      const roadnet::SegmentId sid{static_cast<std::uint32_t>(*raw)};
      if (!net.IsValid(sid)) {
        return Status::DataLoss(
            "policy blob: validity region references unknown segment");
      }
      segments.push_back(sid);
    }
    policy.validity_region_ = ValidityRegion(std::move(segments));
  }
  const auto created_s = GetDouble(data, &offset);
  const auto updates = GetVarint(data, &offset);
  const auto recloaks = GetVarint(data, &offset);
  const auto throttled = GetVarint(data, &offset);
  const auto last_recloak_s = GetDouble(data, &offset);
  const auto sample_count = GetVarint(data, &offset);
  if (!created_s || !updates || !recloaks || !throttled || !last_recloak_s ||
      !sample_count) {
    return Truncated();
  }
  policy.artifact_created_s_ = *created_s;
  policy.stats_.updates = *updates;
  policy.stats_.recloaks = *recloaks;
  policy.stats_.throttled_stale = *throttled;
  policy.stats_.last_recloak_time_s = *last_recloak_s;
  for (std::uint64_t i = 0; i < *sample_count; ++i) {
    const auto sample = GetDouble(data, &offset);
    if (!sample) return Truncated();
    policy.stats_.validity_duration_s.Add(*sample);
  }
  return policy;
}

std::size_t ContinuousPolicy::MemoryFootprint() const noexcept {
  std::size_t bytes = sizeof(ContinuousPolicy);
  bytes += user_id_.capacity();
  bytes += static_cast<std::size_t>(profile_.num_levels()) *
           sizeof(LevelRequirement);
  if (artifact_) {
    bytes += sizeof(CloakedArtifact);
    bytes += artifact_->context.capacity();
    bytes += artifact_->levels.capacity() * sizeof(LevelRecord);
    for (const LevelRecord& level : artifact_->levels) {
      bytes += level.step_bits_blinded.capacity();
    }
    bytes += artifact_->region_segments.capacity() * sizeof(SegmentId);
  }
  if (validity_region_) bytes += validity_region_->memory_bytes();
  bytes += stats_.validity_duration_s.count() * sizeof(double);
  return bytes;
}

}  // namespace rcloak::core
