#include "core/continuous_policy.h"

namespace rcloak::core {

std::string ContinuousPolicy::EpochContext(std::uint64_t epoch) const {
  return user_id_ + "/epoch-" + std::to_string(epoch);
}

ContinuousPolicy::Action ContinuousPolicy::OnUpdate(
    double now_s, roadnet::SegmentId current_segment) {
  ++stats_.updates;
  const bool have = artifact_.has_value();
  const bool inside =
      have && validity_region_ && validity_region_->Contains(current_segment);
  if (inside) return Action::kServe;
  const bool throttled =
      have && (now_s - stats_.last_recloak_time_s <
               options_.min_recloak_interval_s);
  if (throttled) {
    ++stats_.throttled_stale;
    return Action::kServeStale;
  }
  return Action::kRecloak;
}

void ContinuousPolicy::CommitRecloak(double now_s, CloakedArtifact artifact,
                                     CloakRegion validity_region) {
  if (artifact_) {
    stats_.validity_duration_s.Add(now_s - artifact_created_s_);
  }
  ++epoch_;
  artifact_ = std::move(artifact);
  validity_region_ = std::move(validity_region);
  artifact_created_s_ = now_s;
  stats_.last_recloak_time_s = now_s;
  ++stats_.recloaks;
}

}  // namespace rcloak::core
