#include "core/map_context.h"

#include <utility>

#include "core/artifact.h"

namespace rcloak::core {

MapContext::MapContext(const roadnet::RoadNetwork& net)
    : net_(&net), index_(net), fingerprint_(FingerprintNetwork(net)) {}

MapContext::MapContext(roadnet::RoadNetwork&& net)
    : owned_net_(std::make_unique<const roadnet::RoadNetwork>(std::move(net))),
      net_(owned_net_.get()),
      index_(*net_),
      fingerprint_(FingerprintNetwork(*net_)) {}

std::shared_ptr<const MapContext> MapContext::Create(
    const roadnet::RoadNetwork& net) {
  return std::shared_ptr<const MapContext>(new MapContext(net));
}

std::shared_ptr<const MapContext> MapContext::Adopt(roadnet::RoadNetwork net) {
  return std::shared_ptr<const MapContext>(new MapContext(std::move(net)));
}

StatusOr<const TransitionTables*> MapContext::TablesFor(
    std::uint32_t T) const {
  std::lock_guard<std::mutex> lock(tables_mutex_);
  const auto it = tables_by_T_.find(T);
  if (it != tables_by_T_.end()) return it->second.get();
  auto built = BuildTransitionTables(*net_, index_, T);
  if (!built.ok()) return built.status();
  ++table_builds_;
  auto stored = std::make_unique<const TransitionTables>(
      std::move(built).value());
  const TransitionTables* result = stored.get();
  tables_by_T_.emplace(T, std::move(stored));
  return result;
}

std::size_t MapContext::table_builds() const {
  std::lock_guard<std::mutex> lock(tables_mutex_);
  return table_builds_;
}

StatusOr<const GridContext*> MapContext::GridFor(std::uint32_t side) const {
  // Normalize so explicit DefaultSide and 0 share one memo entry.
  if (side == 0) side = GridContext::DefaultSide(*net_);
  std::lock_guard<std::mutex> lock(grids_mutex_);
  const auto it = grids_by_side_.find(side);
  if (it != grids_by_side_.end()) return it->second.get();
  auto built = GridContext::Build(*net_, side);
  if (!built.ok()) return built.status();
  ++grid_builds_;
  const GridContext* result = built->get();
  grids_by_side_.emplace(side, std::move(built).value());
  return result;
}

std::size_t MapContext::grid_builds() const {
  std::lock_guard<std::mutex> lock(grids_mutex_);
  return grid_builds_;
}

const roadnet::LandmarkTable* MapContext::LandmarksFor(
    int num_landmarks, roadnet::PathMetric metric) const {
  const auto key = std::make_pair(num_landmarks, metric);
  std::lock_guard<std::mutex> lock(landmarks_mutex_);
  const auto it = landmarks_by_params_.find(key);
  if (it != landmarks_by_params_.end()) return it->second.get();
  auto built = std::make_unique<const roadnet::LandmarkTable>(
      roadnet::LandmarkTable::Build(*net_, num_landmarks, metric));
  ++landmark_builds_;
  const roadnet::LandmarkTable* result = built.get();
  landmarks_by_params_.emplace(key, std::move(built));
  return result;
}

std::size_t MapContext::landmark_builds() const {
  std::lock_guard<std::mutex> lock(landmarks_mutex_);
  return landmark_builds_;
}

}  // namespace rcloak::core
