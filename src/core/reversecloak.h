// Public facade of the ReverseCloak library, layered over the engine
// architecture (docs/ARCHITECTURE.md):
//
//   MapContext (immutable, shared)  ←  CloakAlgorithm strategies (stateless)
//                 ↑                               ↑
//   Anonymizer / Deanonymizer — thin facades dispatching through the
//   strategy registry, with all per-request mutable state in EngineSession.
//
// Anonymizer — the trusted anonymization server of §IV: shares a
// MapContext (road network + spatial index + memoized RPLE tables), holds
// the occupancy snapshot behind an atomically swappable shared_ptr (cars
// move; see SetOccupancy), and turns (origin segment, PrivacyProfile,
// KeyChain) into a CloakedArtifact. Anonymize() is const: it only reads
// shared state, so any number of threads may call it concurrently.
//
// Deanonymizer — the data requester side: holds whichever level keys were
// granted and reduces a CloakedArtifact down to the corresponding level;
// with all keys, down to L0 = the user's exact segment. Construct it over
// the same MapContext as the Anonymizer to share the index and tables.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.h"
#include "core/artifact.h"
#include "core/cloak_region.h"
#include "core/map_context.h"
#include "core/privacy_profile.h"
#include "core/rge.h"
#include "core/rple.h"
#include "crypto/keyed_prng.h"
#include "mobility/trace.h"

namespace rcloak::core {

struct AnonymizeRequest {
  SegmentId origin = roadnet::kInvalidSegment;
  PrivacyProfile profile;
  Algorithm algorithm = Algorithm::kRge;
  // Public request context (binds the PRNG streams; must be unique per
  // request, e.g. "user42/2017-03-02T10:11:12/7").
  std::string context;
};

struct AnonymizeResult {
  CloakedArtifact artifact;
  RgeStats rge_stats;
  RpleStats rple_stats;
  GridStats grid_stats;
  std::uint64_t baseline_expansions = 0;
};

class Anonymizer {
 public:
  // Compatibility constructor: builds a private MapContext over `net`
  // (which must outlive the anonymizer). `rple_T` is the transition-list
  // length used when requests pick RPLE; pre-assignment runs lazily on
  // first use and is memoized in the context.
  Anonymizer(const roadnet::RoadNetwork& net,
             mobility::OccupancySnapshot occupancy, std::uint32_t rple_T = 6);

  // Shares an existing context (the server / multi-engine shape): no
  // duplicate index or table builds.
  Anonymizer(std::shared_ptr<const MapContext> context,
             mobility::OccupancySnapshot occupancy, std::uint32_t rple_T = 6);

  Anonymizer(Anonymizer&& other) noexcept;
  Anonymizer& operator=(Anonymizer&& other) noexcept;

  // Read-only over all shared state: safe to call concurrently from many
  // threads. Builds a throwaway session; the overload below reuses one.
  StatusOr<AnonymizeResult> Anonymize(const AnonymizeRequest& request,
                                      const crypto::KeyChain& keys) const;

  // Hot-path overload: runs the request in `session` (reset internally),
  // reusing its allocations. Each concurrent caller needs its own session.
  StatusOr<AnonymizeResult> Anonymize(const AnonymizeRequest& request,
                                      const crypto::KeyChain& keys,
                                      EngineSession& session) const;

  // Refreshes the user-position snapshot (cars move). Publishes a new
  // snapshot epoch by atomic shared_ptr swap: in-flight requests keep the
  // epoch they started with, later requests see the new one. Safe to call
  // while Anonymize() runs on other threads.
  void SetOccupancy(mobility::OccupancySnapshot occupancy);

  // Overrides the k-anonymity user counting for subsequent requests (e.g.
  // a trace-window distinct counter for spatio-temporal cloaking). Pass
  // nullptr to return to the internal occupancy snapshot. The counter must
  // outlive its use; the anonymizer does not take ownership. Not
  // synchronized against concurrent Anonymize() — set it before serving.
  void SetUserCounter(const UserCounter* counter) noexcept {
    external_counter_ = counter;
  }

  // Forces RPLE pre-assignment now (e.g. to measure it); otherwise lazy.
  Status EnsurePreassigned() const;

  // Forces the grid cell index + cell-transition tables for this engine's
  // T now (the server warms them so workers never contend on the lazy
  // build); otherwise lazy on the first grid request.
  Status EnsureGridReady() const;

  const std::shared_ptr<const MapContext>& context() const noexcept {
    return ctx_;
  }
  const roadnet::RoadNetwork& network() const noexcept {
    return ctx_->network();
  }
  std::uint32_t rple_T() const noexcept { return rple_T_; }

  // The current snapshot epoch.
  std::shared_ptr<const mobility::OccupancySnapshot> occupancy_snapshot()
      const {
    return occupancy_.load(std::memory_order_acquire);
  }
  // Compatibility accessor. The reference is into the CURRENT epoch and
  // dangles once SetOccupancy publishes a new one (the old snapshot is
  // dropped, unlike the pre-epoch design which assigned in place) — do
  // not hold it across SetOccupancy; hold occupancy_snapshot() instead.
  const mobility::OccupancySnapshot& occupancy() const {
    return *occupancy_snapshot();
  }

 private:
  std::shared_ptr<const MapContext> ctx_;
  std::atomic<std::shared_ptr<const mobility::OccupancySnapshot>> occupancy_;
  std::uint32_t rple_T_;
  const UserCounter* external_counter_ = nullptr;
};

class Deanonymizer {
 public:
  // Compatibility constructor: builds a private context over the same map
  // (RPLE tables are a pure function of map and T, so they re-derive).
  explicit Deanonymizer(const roadnet::RoadNetwork& net);

  // Shares the anonymizer's context: index and tables are built once.
  explicit Deanonymizer(std::shared_ptr<const MapContext> context);

  // Reduces the artifact from level N down to `target_level` (0 =>
  // exact segment). `granted_keys` maps level index -> key; all keys for
  // levels target_level+1 .. N must be present.
  StatusOr<CloakRegion> Reduce(
      const CloakedArtifact& artifact,
      const std::map<int, crypto::AccessKey>& granted_keys,
      int target_level) const;

  // One reduction of a batch. Artifact and key map are borrowed; they must
  // outlive the ReduceBatch call.
  struct ReduceJob {
    const CloakedArtifact* artifact = nullptr;
    const std::map<int, crypto::AccessKey>* granted_keys = nullptr;
    int target_level = 0;
  };

  // Batch path: element i of the result corresponds to jobs[i] and is
  // byte-identical to Reduce(*jobs[i].artifact, ...). Per-artifact setup
  // (strategy lookup, BeginReduce table resolution) is amortized by
  // reusing one ReduceSession per (algorithm, rple_T) run instead of
  // paying the context's memo lock once per artifact — the hot path of
  // the session pool's epoch-rollover audit (validity-region) step.
  std::vector<StatusOr<CloakRegion>> ReduceBatch(
      const std::vector<ReduceJob>& jobs) const;

  // One job of the batch contract with caller-owned scratch: byte-identical
  // to Reduce(*job.artifact, ...) while reusing `session` across calls.
  // BeginReduce revalidates the session's prerequisites against every
  // artifact, so one session may serve mixed algorithms and T values and
  // may live as long as the caller likes (the server workers each keep one
  // across fan-out rounds — see AnonymizationServer::ReduceOnWorkers).
  StatusOr<CloakRegion> ReduceOne(const ReduceJob& job,
                                  ReduceSession& session) const;

  // The region exposed with no keys at all (level N as published).
  StatusOr<CloakRegion> FullRegion(const CloakedArtifact& artifact) const;

  const std::shared_ptr<const MapContext>& context() const noexcept {
    return ctx_;
  }

 private:
  // Shared peel loop; `session` carries prerequisites across calls (the
  // batch path reuses it, the single-shot path hands in a fresh one).
  StatusOr<CloakRegion> ReduceWith(
      const CloakedArtifact& artifact,
      const std::map<int, crypto::AccessKey>& granted_keys, int target_level,
      ReduceSession& session) const;

  std::shared_ptr<const MapContext> ctx_;
};

}  // namespace rcloak::core
