// Public facade of the ReverseCloak library.
//
// Anonymizer — the trusted anonymization server of §IV: owns the road
// network, an occupancy snapshot and (for RPLE) the pre-assigned transition
// tables; turns (origin segment, PrivacyProfile, KeyChain) into a
// CloakedArtifact whose outermost region goes to the LBS provider.
//
// Deanonymizer — the data requester side: holds whichever level keys were
// granted and reduces a CloakedArtifact down to the corresponding level;
// with all keys, down to L0 = the user's exact segment.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/artifact.h"
#include "core/cloak_region.h"
#include "core/privacy_profile.h"
#include "core/rge.h"
#include "core/rple.h"
#include "crypto/keyed_prng.h"
#include "mobility/trace.h"
#include "roadnet/spatial_index.h"

namespace rcloak::core {

struct AnonymizeRequest {
  SegmentId origin = roadnet::kInvalidSegment;
  PrivacyProfile profile;
  Algorithm algorithm = Algorithm::kRge;
  // Public request context (binds the PRNG streams; must be unique per
  // request, e.g. "user42/2017-03-02T10:11:12/7").
  std::string context;
};

struct AnonymizeResult {
  CloakedArtifact artifact;
  RgeStats rge_stats;
  RpleStats rple_stats;
};

class Anonymizer {
 public:
  // `rple_T` is the transition-list length used when requests pick RPLE.
  // RPLE pre-assignment runs lazily on first use and is cached.
  Anonymizer(const roadnet::RoadNetwork& net,
             mobility::OccupancySnapshot occupancy, std::uint32_t rple_T = 6);

  StatusOr<AnonymizeResult> Anonymize(const AnonymizeRequest& request,
                                      const crypto::KeyChain& keys);

  // Refreshes the user-position snapshot (cars move).
  void SetOccupancy(mobility::OccupancySnapshot occupancy) {
    occupancy_ = std::move(occupancy);
  }

  // Overrides the k-anonymity user counting for subsequent requests (e.g.
  // a trace-window distinct counter for spatio-temporal cloaking). Pass
  // nullptr to return to the internal occupancy snapshot. The counter must
  // outlive its use; the anonymizer does not take ownership.
  void SetUserCounter(const UserCounter* counter) noexcept {
    external_counter_ = counter;
  }

  // Forces pre-assignment now (e.g. to measure it); otherwise lazy.
  Status EnsurePreassigned();
  const TransitionTables* tables() const noexcept {
    return tables_ ? &*tables_ : nullptr;
  }

  const roadnet::RoadNetwork& network() const noexcept { return *net_; }
  const mobility::OccupancySnapshot& occupancy() const noexcept {
    return occupancy_;
  }

 private:
  const roadnet::RoadNetwork* net_;
  mobility::OccupancySnapshot occupancy_;
  roadnet::SpatialIndex index_;
  std::uint32_t rple_T_;
  std::optional<TransitionTables> tables_;
  std::uint64_t fingerprint_;
  const UserCounter* external_counter_ = nullptr;
};

class Deanonymizer {
 public:
  // The de-anonymizer needs the same map; RPLE additionally re-derives the
  // pre-assigned tables from it (they are a pure function of map and T).
  explicit Deanonymizer(const roadnet::RoadNetwork& net);

  // Reduces the artifact from level N down to `target_level` (0 =>
  // exact segment). `granted_keys` maps level index -> key; all keys for
  // levels target_level+1 .. N must be present.
  StatusOr<CloakRegion> Reduce(
      const CloakedArtifact& artifact,
      const std::map<int, crypto::AccessKey>& granted_keys, int target_level);

  // The region exposed with no keys at all (level N as published).
  StatusOr<CloakRegion> FullRegion(const CloakedArtifact& artifact) const;

 private:
  Status EnsureTables(std::uint32_t T);

  const roadnet::RoadNetwork* net_;
  roadnet::SpatialIndex index_;
  std::optional<TransitionTables> tables_;
  std::uint32_t tables_T_ = 0;
  std::uint64_t fingerprint_;
};

}  // namespace rcloak::core
