// MapContext — the immutable, thread-shareable public layer of the engine.
//
// Everything that is a pure function of the road map lives here exactly
// once: the road network itself, the spatial index over segment midpoints,
// the structural fingerprint, and the memoized RPLE transition tables
// (a deterministic function of (network, T)). Anonymizer, Deanonymizer,
// the anonymization server's workers, examples and benches all share one
// context by shared_ptr/const& — nothing in this class ever mutates after
// construction, so no reader needs a lock on the hot path. The only
// internal synchronization is the build-once memo for transition tables,
// which hands out pointer-stable immutable tables.
//
// Ownership rules (docs/ARCHITECTURE.md):
//   * a MapContext either borrows the network (Create — caller keeps it
//     alive) or owns a moved-in copy (Adopt);
//   * everything handed out by const accessor is valid for the lifetime of
//     the context and safe to read from any thread;
//   * per-request mutable state never lives here — it belongs to
//     EngineSession (core/algorithm.h).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "core/grid_cloak.h"
#include "core/rple.h"
#include "roadnet/alt_routing.h"
#include "roadnet/road_network.h"
#include "roadnet/spatial_index.h"
#include "util/status.h"

namespace rcloak::core {

class MapContext {
 public:
  // Borrowing constructor: `net` must outlive the context (the historical
  // Anonymizer/Deanonymizer contract).
  static std::shared_ptr<const MapContext> Create(
      const roadnet::RoadNetwork& net);

  // Owning constructor: the context keeps the network alive itself.
  static std::shared_ptr<const MapContext> Adopt(roadnet::RoadNetwork net);

  MapContext(const MapContext&) = delete;
  MapContext& operator=(const MapContext&) = delete;

  const roadnet::RoadNetwork& network() const noexcept { return *net_; }
  const roadnet::SpatialIndex& index() const noexcept { return index_; }
  std::uint64_t fingerprint() const noexcept { return fingerprint_; }

  // The RPLE pre-assigned tables for transition-list length T. Built on
  // first use (thread-safe, build-once per distinct T) and memoized for the
  // lifetime of the context; the returned pointer is stable and the tables
  // are immutable, so concurrent readers need no further synchronization.
  StatusOr<const TransitionTables*> TablesFor(std::uint32_t T) const;

  // How many table builds have run so far. Sharing tests pin this to prove
  // that co-located Anonymizer + Deanonymizer do not duplicate work.
  std::size_t table_builds() const;

  // The grid/Hilbert cell index for the non-road-constrained backend
  // (core/grid_cloak.h). side == 0 uses GridContext::DefaultSide, so both
  // protocol sides agree without a wire field. Built on first use
  // (thread-safe, build-once per distinct side) and memoized for the
  // lifetime of the context; the returned pointer is stable and the grid
  // is immutable (its own per-T table memo synchronizes internally).
  StatusOr<const GridContext*> GridFor(std::uint32_t side = 0) const;

  // How many grid builds have run so far (memoization pin).
  std::size_t grid_builds() const;

  // The ALT landmark distance tables for (num_landmarks, metric). Built on
  // first use (thread-safe, build-once per distinct parameter pair) and
  // memoized for the lifetime of the context, so routing consumers (the
  // mobility simulator, query benches) stop paying the Dijkstra sweeps per
  // run. Construct a roadnet::AltRouter over the returned pointer.
  const roadnet::LandmarkTable* LandmarksFor(
      int num_landmarks,
      roadnet::PathMetric metric = roadnet::PathMetric::kDistance) const;

  // How many landmark builds have run so far (memoization pin).
  std::size_t landmark_builds() const;

 private:
  explicit MapContext(const roadnet::RoadNetwork& net);
  explicit MapContext(roadnet::RoadNetwork&& net);

  // Set iff the context owns the network (Adopt).
  std::unique_ptr<const roadnet::RoadNetwork> owned_net_;
  const roadnet::RoadNetwork* net_;
  roadnet::SpatialIndex index_;
  std::uint64_t fingerprint_;

  // Build-once memos; unique_ptr values keep handed-out pointers stable
  // across rehash-free std::map growth.
  mutable std::mutex tables_mutex_;
  mutable std::map<std::uint32_t, std::unique_ptr<const TransitionTables>>
      tables_by_T_;
  mutable std::size_t table_builds_ = 0;

  mutable std::mutex landmarks_mutex_;
  mutable std::map<std::pair<int, roadnet::PathMetric>,
                   std::unique_ptr<const roadnet::LandmarkTable>>
      landmarks_by_params_;
  mutable std::size_t landmark_builds_ = 0;

  mutable std::mutex grids_mutex_;
  mutable std::map<std::uint32_t, std::unique_ptr<const GridContext>>
      grids_by_side_;
  mutable std::size_t grid_builds_ = 0;
};

}  // namespace rcloak::core
