#include "core/cloak_region.h"

#include <algorithm>
#include <cassert>

namespace rcloak::core {

namespace {
struct IdLess {
  bool operator()(SegmentId x, SegmentId y) const noexcept {
    return roadnet::Index(x) < roadnet::Index(y);
  }
};
}  // namespace

CloakRegion CloakRegion::FromSegments(const roadnet::RoadNetwork& net,
                                      const std::vector<SegmentId>& segments) {
  CloakRegion region(net);
  region.segments_ = segments;
  std::sort(region.segments_.begin(), region.segments_.end(), IdLess{});
  region.segments_.erase(
      std::unique(region.segments_.begin(), region.segments_.end()),
      region.segments_.end());
  for (SegmentId sid : region.segments_) {
    region.member_[roadnet::Index(sid)] = 1;
  }
  region.bounds_dirty_ = !region.segments_.empty();
  return region;
}

void CloakRegion::Insert(SegmentId id) {
  if (Contains(id)) return;
  member_[roadnet::Index(id)] = 1;
  const auto it =
      std::lower_bound(segments_.begin(), segments_.end(), id, IdLess{});
  segments_.insert(it, id);
  if (!length_dirty_) {
    const auto pos = std::lower_bound(by_length_.begin(), by_length_.end(),
                                      id, LengthOrder{net_});
    by_length_.insert(pos, id);
  }
  if (frontier_enabled_) {
    FrontierInsertDeltas(id);
    if (fb_live_) FallbackOnInsert(id);
  }
  if (!bounds_dirty_) bounds_.Extend(net_->SegmentBounds(id));
  if (user_cache_occ_ != nullptr) {
    if (user_cache_stamp_ == user_cache_occ_->stamp()) {
      user_count_ += user_cache_occ_->count(id);
    } else {
      user_cache_occ_ = nullptr;
    }
  }
}

void CloakRegion::Erase(SegmentId id) {
  if (!Contains(id)) return;
  member_[roadnet::Index(id)] = 0;
  const auto it =
      std::lower_bound(segments_.begin(), segments_.end(), id, IdLess{});
  segments_.erase(it);
  if (!length_dirty_) {
    const auto pos = std::lower_bound(by_length_.begin(), by_length_.end(),
                                      id, LengthOrder{net_});
    assert(pos != by_length_.end() && *pos == id);
    by_length_.erase(pos);
  }
  if (frontier_enabled_) FrontierEraseDeltas(id);
  // Distances can grow after an erase; the carried fallback only models
  // shrinkage, so it rebuilds on next use.
  fb_live_ = false;
  if (segments_.empty()) {
    bounds_ = geo::BoundingBox{};
    bounds_dirty_ = false;
  } else {
    bounds_dirty_ = true;
  }
  if (user_cache_occ_ != nullptr) {
    if (user_cache_stamp_ == user_cache_occ_->stamp()) {
      user_count_ -= user_cache_occ_->count(id);
    } else {
      user_cache_occ_ = nullptr;
    }
  }
}

void CloakRegion::Clear() {
  for (SegmentId sid : segments_) member_[roadnet::Index(sid)] = 0;
  segments_.clear();
  by_length_.clear();
  length_dirty_ = true;
  // Adjacency counters are stale once members vanish wholesale; disable the
  // frontier engine and let EnsureFrontier rebuild it lazily on next use.
  frontier_enabled_ = false;
  frontier_.clear();
  fb_live_ = false;
  bounds_ = geo::BoundingBox{};
  bounds_dirty_ = false;
  user_cache_occ_ = nullptr;
}

const std::vector<SegmentId>& CloakRegion::LengthSorted() const {
  if (length_dirty_) {
    by_length_ = segments_;
    std::sort(by_length_.begin(), by_length_.end(), LengthOrder{net_});
    length_dirty_ = false;
  }
  return by_length_;
}

std::size_t CloakRegion::LengthRankOf(SegmentId id) const {
  if (!Contains(id)) return size();
  const auto& sorted = LengthSorted();
  const auto pos = std::lower_bound(sorted.begin(), sorted.end(), id,
                                    LengthOrder{net_});
  assert(pos != sorted.end() && *pos == id);
  return static_cast<std::size_t>(pos - sorted.begin());
}

void CloakRegion::EnsureFrontier() const {
  if (frontier_enabled_) return;
  adjacent_members_.assign(net_->segment_count(), 0);
  frontier_.clear();
  for (SegmentId sid : segments_) {
    net_->ForEachAdjacentSegment(sid, [&](SegmentId adj) {
      if (++adjacent_members_[roadnet::Index(adj)] == 1 && !Contains(adj)) {
        frontier_.push_back(adj);
      }
    });
  }
  std::sort(frontier_.begin(), frontier_.end(), LengthOrder{net_});
  frontier_enabled_ = true;
}

void CloakRegion::FrontierInsertDeltas(SegmentId id) {
  // `id` is already a member: drop it from the frontier if it was there.
  if (adjacent_members_[roadnet::Index(id)] > 0) {
    const auto pos = std::lower_bound(frontier_.begin(), frontier_.end(), id,
                                      LengthOrder{net_});
    if (pos != frontier_.end() && *pos == id) frontier_.erase(pos);
  }
  net_->ForEachAdjacentSegment(id, [&](SegmentId adj) {
    if (++adjacent_members_[roadnet::Index(adj)] == 1 && !Contains(adj)) {
      const auto pos = std::lower_bound(frontier_.begin(), frontier_.end(),
                                        adj, LengthOrder{net_});
      frontier_.insert(pos, adj);
      // New ring-1 segments join the fallback output on its next call.
      if (fb_live_) fb_joins_.push_back(adj);
    }
  });
}

void CloakRegion::FrontierEraseDeltas(SegmentId id) {
  // `id` is no longer a member: retract its adjacency contributions.
  net_->ForEachAdjacentSegment(id, [&](SegmentId adj) {
    if (--adjacent_members_[roadnet::Index(adj)] == 0 && !Contains(adj)) {
      const auto pos = std::lower_bound(frontier_.begin(), frontier_.end(),
                                        adj, LengthOrder{net_});
      if (pos != frontier_.end() && *pos == adj) frontier_.erase(pos);
    }
  });
  if (adjacent_members_[roadnet::Index(id)] > 0) {
    const auto pos = std::lower_bound(frontier_.begin(), frontier_.end(), id,
                                      LengthOrder{net_});
    frontier_.insert(pos, id);
  }
}

const std::vector<SegmentId>& CloakRegion::Frontier() const {
  EnsureFrontier();
  return frontier_;
}

namespace {
constexpr std::uint32_t kFbUnknown = 0xFFFFFFFFu;
}  // namespace

std::uint32_t CloakRegion::FallbackDist(SegmentId id) const noexcept {
  const std::uint32_t i = roadnet::Index(id);
  if (member_[i] != 0) return 0;
  if (adjacent_members_[i] > 0) return 1;
  if (fb_dist_mark_[i] == fb_epoch_) return fb_dist_[i];
  return kFbUnknown;
}

void CloakRegion::FallbackReset() const {
  if (fb_dist_.size() != net_->segment_count()) {
    fb_dist_.assign(net_->segment_count(), 0);
    fb_dist_mark_.assign(net_->segment_count(), 0);
    fb_out_mark_.assign(net_->segment_count(), 0);
    fb_epoch_ = 0;
  }
  if (++fb_epoch_ == 0) {  // epoch wrap: clear stale marks
    std::fill(fb_dist_mark_.begin(), fb_dist_mark_.end(), 0);
    std::fill(fb_out_mark_.begin(), fb_out_mark_.end(), 0);
    fb_epoch_ = 1;
  }
  // Ring storage beyond fb_rings_built_ is stale, never cleared: GrowRing
  // overwrites a slot before the ring becomes visible again.
  fb_rings_built_ = 1;
  fb_rings_out_ = 1;
  fb_sorted_ = frontier_;
  for (SegmentId sid : frontier_) {
    fb_out_mark_[roadnet::Index(sid)] = fb_epoch_;
  }
  fb_joins_.clear();
  fb_removed_.clear();
  fb_live_ = true;
}

std::size_t CloakRegion::FallbackGrowRing() const {
  const int r = fb_rings_built_ + 1;
  if (fb_rings_.size() < static_cast<std::size_t>(r - 1)) {
    fb_rings_.resize(static_cast<std::size_t>(r - 1));
    fb_ring_count_.resize(static_cast<std::size_t>(r - 1), 0);
  }
  auto& ring = fb_rings_[static_cast<std::size_t>(r - 2)];
  ring.clear();
  auto scan_source = [&](SegmentId v) {
    net_->ForEachAdjacentSegment(v, [&](SegmentId w) {
      const std::uint32_t wi = roadnet::Index(w);
      if (member_[wi] != 0 || adjacent_members_[wi] > 0) return;
      if (fb_dist_mark_[wi] == fb_epoch_) return;  // already at a dist < r
      fb_dist_[wi] = static_cast<std::uint32_t>(r);
      fb_dist_mark_[wi] = fb_epoch_;
      ring.push_back(w);
    });
  };
  if (fb_rings_built_ == 1) {
    for (SegmentId v : frontier_) scan_source(v);
  } else {
    // Live entries of the current outermost ring are the BFS sources.
    for (SegmentId v : fb_rings_[static_cast<std::size_t>(
             fb_rings_built_ - 2)]) {
      if (FallbackDist(v) == static_cast<std::uint32_t>(fb_rings_built_)) {
        scan_source(v);
      }
    }
  }
  fb_ring_count_[static_cast<std::size_t>(r - 2)] = ring.size();
  fb_rings_built_ = r;
  return ring.size();
}

void CloakRegion::FallbackOnInsert(SegmentId id) {
  const std::uint32_t i = roadnet::Index(id);
  auto retire_ring_slot = [&](std::uint32_t seg) {
    if (fb_dist_mark_[seg] == fb_epoch_) {
      --fb_ring_count_[fb_dist_[seg] - 2];
      fb_dist_mark_[seg] = 0;
    }
  };
  // `id` is a member now: retire its ring slot and queue its removal from
  // the merged output.
  retire_ring_slot(i);
  if (fb_out_mark_[i] == fb_epoch_) {
    fb_out_mark_[i] = 0;
    fb_removed_.push_back(id);
  }
  // Decrease-only BFS wave from the new member: a segment's distance to
  // the region shrinks iff its distance to `id` is smaller, and the wave
  // visits exactly those segments (bounded by the built horizon — deeper
  // distances are unknown by invariant and stay unknown).
  fb_wave_.clear();
  fb_wave_dist_.clear();
  net_->ForEachAdjacentSegment(id, [&](SegmentId v) {
    const std::uint32_t vi = roadnet::Index(v);
    if (member_[vi] != 0) return;
    // Adjacency counters already include `id`: a second member neighbour
    // means v was ring-1 before this insert, so nothing shrank.
    if (adjacent_members_[vi] >= 2) return;
    retire_ring_slot(vi);  // v moved into ring 1 (frontier hook queued it)
    fb_wave_.push_back(v);
    fb_wave_dist_.push_back(1);
  });
  for (std::size_t head = 0; head < fb_wave_.size(); ++head) {
    const SegmentId v = fb_wave_[head];
    const std::uint32_t cand = fb_wave_dist_[head] + 1;
    if (cand > static_cast<std::uint32_t>(fb_rings_built_)) continue;
    net_->ForEachAdjacentSegment(v, [&](SegmentId w) {
      const std::uint32_t wi = roadnet::Index(w);
      if (member_[wi] != 0 || adjacent_members_[wi] > 0) return;
      const std::uint32_t old = fb_dist_mark_[wi] == fb_epoch_
                                    ? fb_dist_[wi]
                                    : kFbUnknown;
      if (cand >= old) return;
      if (old != kFbUnknown) --fb_ring_count_[old - 2];
      fb_dist_[wi] = cand;
      fb_dist_mark_[wi] = fb_epoch_;
      ++fb_ring_count_[cand - 2];
      fb_rings_[cand - 2].push_back(w);
      if (fb_out_mark_[wi] != fb_epoch_) fb_joins_.push_back(w);
      fb_wave_.push_back(w);
      fb_wave_dist_.push_back(cand);
    });
  }
}

std::span<const SegmentId> CloakRegion::FrontierAtLeast(
    std::size_t min_size, int* rings_used) const {
  assert(!segments_.empty() && "frontier of empty region");
  EnsureFrontier();
  const std::size_t target = std::max<std::size_t>(min_size, 1);
  if (frontier_.empty()) {
    if (rings_used != nullptr) *rings_used = 0;
    return {};
  }
  if (frontier_.size() >= target) {
    if (rings_used != nullptr) *rings_used = 1;
    return frontier_;
  }

  // Ring-1 is too small: serve from the carried multi-ring structure,
  // (re)building it only after an invalidating Erase/Clear.
  if (!fb_live_) FallbackReset();

  // How many rings the target needs, growing the horizon as required.
  // Ring counts are exact, so interior rings can never be empty while a
  // deeper ring is populated; an empty next ring means the component is
  // exhausted (matching the from-scratch BFS).
  std::size_t cum = frontier_.size();
  int rings = 1;
  while (cum < target) {
    if (rings + 1 > fb_rings_built_) {
      if (FallbackGrowRing() == 0) break;
    }
    const std::size_t count =
        fb_ring_count_[static_cast<std::size_t>(rings - 1)];
    if (count == 0) break;
    ++rings;
    cum += count;
  }

  // Reconcile the merged output. Members leave point-wise; a shrunk
  // radius filters one pass (and re-queues nothing — deeper rings stay
  // materialized for the next growth).
  if (rings < fb_rings_out_) {
    fb_removed_.clear();  // the filter drops members as well
    std::size_t kept = 0;
    for (SegmentId sid : fb_sorted_) {
      const std::uint32_t dist = FallbackDist(sid);
      if (dist >= 1 && dist <= static_cast<std::uint32_t>(rings)) {
        fb_sorted_[kept++] = sid;
      } else {
        fb_out_mark_[roadnet::Index(sid)] = 0;
      }
    }
    fb_sorted_.resize(kept);
  } else {
    for (SegmentId sid : fb_removed_) {
      const auto pos = std::lower_bound(fb_sorted_.begin(), fb_sorted_.end(),
                                        sid, LengthOrder{net_});
      assert(pos != fb_sorted_.end() && *pos == sid);
      fb_sorted_.erase(pos);
    }
    fb_removed_.clear();
  }

  // Joins: wave-discovered / new ring-1 segments, plus whole rings that
  // moved inside the output radius.
  fb_join_batch_.clear();
  for (SegmentId sid : fb_joins_) {
    const std::uint32_t i = roadnet::Index(sid);
    if (member_[i] != 0 || fb_out_mark_[i] == fb_epoch_) continue;
    const std::uint32_t dist = FallbackDist(sid);
    // Too-deep nodes are dropped here; their ring list re-surfaces them
    // if the radius ever grows past them.
    if (dist <= static_cast<std::uint32_t>(rings)) {
      fb_join_batch_.push_back(sid);
    }
  }
  fb_joins_.clear();
  for (int r = std::max(fb_rings_out_ + 1, 2); r <= rings; ++r) {
    for (SegmentId sid : fb_rings_[static_cast<std::size_t>(r - 2)]) {
      if (FallbackDist(sid) == static_cast<std::uint32_t>(r) &&
          fb_out_mark_[roadnet::Index(sid)] != fb_epoch_) {
        fb_join_batch_.push_back(sid);
      }
    }
  }
  if (!fb_join_batch_.empty()) {
    std::sort(fb_join_batch_.begin(), fb_join_batch_.end(),
              LengthOrder{net_});
    fb_join_batch_.erase(
        std::unique(fb_join_batch_.begin(), fb_join_batch_.end()),
        fb_join_batch_.end());
    for (SegmentId sid : fb_join_batch_) {
      fb_out_mark_[roadnet::Index(sid)] = fb_epoch_;
    }
    const std::size_t merged_from = fb_sorted_.size();
    fb_sorted_.insert(fb_sorted_.end(), fb_join_batch_.begin(),
                      fb_join_batch_.end());
    std::inplace_merge(fb_sorted_.begin(),
                       fb_sorted_.begin() +
                           static_cast<std::ptrdiff_t>(merged_from),
                       fb_sorted_.end(), LengthOrder{net_});
  }
  fb_rings_out_ = rings;
  if (rings_used != nullptr) *rings_used = rings;
  return fb_sorted_;
}

std::uint64_t CloakRegion::UserCount(
    const mobility::OccupancySnapshot& occupancy) const {
  if (user_cache_occ_ == &occupancy &&
      user_cache_stamp_ == occupancy.stamp()) {
    return user_count_;
  }
  std::uint64_t users = 0;
  for (SegmentId sid : segments_) users += occupancy.count(sid);
  user_cache_occ_ = &occupancy;
  user_cache_stamp_ = occupancy.stamp();
  user_count_ = users;
  return users;
}

geo::BoundingBox CloakRegion::Bounds() const {
  if (bounds_dirty_) {
    bounds_ = geo::BoundingBox{};
    for (SegmentId sid : segments_) bounds_.Extend(net_->SegmentBounds(sid));
    bounds_dirty_ = false;
  }
  return bounds_;
}

}  // namespace rcloak::core
