#include "core/cloak_region.h"

#include <algorithm>
#include <cassert>

namespace rcloak::core {

namespace {
struct IdLess {
  bool operator()(SegmentId x, SegmentId y) const noexcept {
    return roadnet::Index(x) < roadnet::Index(y);
  }
};
}  // namespace

CloakRegion CloakRegion::FromSegments(const roadnet::RoadNetwork& net,
                                      const std::vector<SegmentId>& segments) {
  CloakRegion region(net);
  region.segments_ = segments;
  std::sort(region.segments_.begin(), region.segments_.end(), IdLess{});
  region.segments_.erase(
      std::unique(region.segments_.begin(), region.segments_.end()),
      region.segments_.end());
  for (SegmentId sid : region.segments_) {
    region.member_[roadnet::Index(sid)] = 1;
  }
  region.bounds_dirty_ = !region.segments_.empty();
  return region;
}

void CloakRegion::Insert(SegmentId id) {
  if (Contains(id)) return;
  member_[roadnet::Index(id)] = 1;
  const auto it =
      std::lower_bound(segments_.begin(), segments_.end(), id, IdLess{});
  segments_.insert(it, id);
  if (!length_dirty_) {
    const auto pos = std::lower_bound(by_length_.begin(), by_length_.end(),
                                      id, LengthOrder{net_});
    by_length_.insert(pos, id);
  }
  if (frontier_enabled_) FrontierInsertDeltas(id);
  if (!bounds_dirty_) bounds_.Extend(net_->SegmentBounds(id));
  if (user_cache_occ_ != nullptr) {
    if (user_cache_stamp_ == user_cache_occ_->stamp()) {
      user_count_ += user_cache_occ_->count(id);
    } else {
      user_cache_occ_ = nullptr;
    }
  }
}

void CloakRegion::Erase(SegmentId id) {
  if (!Contains(id)) return;
  member_[roadnet::Index(id)] = 0;
  const auto it =
      std::lower_bound(segments_.begin(), segments_.end(), id, IdLess{});
  segments_.erase(it);
  if (!length_dirty_) {
    const auto pos = std::lower_bound(by_length_.begin(), by_length_.end(),
                                      id, LengthOrder{net_});
    assert(pos != by_length_.end() && *pos == id);
    by_length_.erase(pos);
  }
  if (frontier_enabled_) FrontierEraseDeltas(id);
  if (segments_.empty()) {
    bounds_ = geo::BoundingBox{};
    bounds_dirty_ = false;
  } else {
    bounds_dirty_ = true;
  }
  if (user_cache_occ_ != nullptr) {
    if (user_cache_stamp_ == user_cache_occ_->stamp()) {
      user_count_ -= user_cache_occ_->count(id);
    } else {
      user_cache_occ_ = nullptr;
    }
  }
}

void CloakRegion::Clear() {
  for (SegmentId sid : segments_) member_[roadnet::Index(sid)] = 0;
  segments_.clear();
  by_length_.clear();
  length_dirty_ = true;
  // Adjacency counters are stale once members vanish wholesale; disable the
  // frontier engine and let EnsureFrontier rebuild it lazily on next use.
  frontier_enabled_ = false;
  frontier_.clear();
  bounds_ = geo::BoundingBox{};
  bounds_dirty_ = false;
  user_cache_occ_ = nullptr;
}

const std::vector<SegmentId>& CloakRegion::LengthSorted() const {
  if (length_dirty_) {
    by_length_ = segments_;
    std::sort(by_length_.begin(), by_length_.end(), LengthOrder{net_});
    length_dirty_ = false;
  }
  return by_length_;
}

std::size_t CloakRegion::LengthRankOf(SegmentId id) const {
  if (!Contains(id)) return size();
  const auto& sorted = LengthSorted();
  const auto pos = std::lower_bound(sorted.begin(), sorted.end(), id,
                                    LengthOrder{net_});
  assert(pos != sorted.end() && *pos == id);
  return static_cast<std::size_t>(pos - sorted.begin());
}

void CloakRegion::EnsureFrontier() const {
  if (frontier_enabled_) return;
  adjacent_members_.assign(net_->segment_count(), 0);
  frontier_.clear();
  for (SegmentId sid : segments_) {
    net_->ForEachAdjacentSegment(sid, [&](SegmentId adj) {
      if (++adjacent_members_[roadnet::Index(adj)] == 1 && !Contains(adj)) {
        frontier_.push_back(adj);
      }
    });
  }
  std::sort(frontier_.begin(), frontier_.end(), LengthOrder{net_});
  frontier_enabled_ = true;
}

void CloakRegion::FrontierInsertDeltas(SegmentId id) {
  // `id` is already a member: drop it from the frontier if it was there.
  if (adjacent_members_[roadnet::Index(id)] > 0) {
    const auto pos = std::lower_bound(frontier_.begin(), frontier_.end(), id,
                                      LengthOrder{net_});
    if (pos != frontier_.end() && *pos == id) frontier_.erase(pos);
  }
  net_->ForEachAdjacentSegment(id, [&](SegmentId adj) {
    if (++adjacent_members_[roadnet::Index(adj)] == 1 && !Contains(adj)) {
      const auto pos = std::lower_bound(frontier_.begin(), frontier_.end(),
                                        adj, LengthOrder{net_});
      frontier_.insert(pos, adj);
    }
  });
}

void CloakRegion::FrontierEraseDeltas(SegmentId id) {
  // `id` is no longer a member: retract its adjacency contributions.
  net_->ForEachAdjacentSegment(id, [&](SegmentId adj) {
    if (--adjacent_members_[roadnet::Index(adj)] == 0 && !Contains(adj)) {
      const auto pos = std::lower_bound(frontier_.begin(), frontier_.end(),
                                        adj, LengthOrder{net_});
      if (pos != frontier_.end() && *pos == adj) frontier_.erase(pos);
    }
  });
  if (adjacent_members_[roadnet::Index(id)] > 0) {
    const auto pos = std::lower_bound(frontier_.begin(), frontier_.end(), id,
                                      LengthOrder{net_});
    frontier_.insert(pos, id);
  }
}

const std::vector<SegmentId>& CloakRegion::Frontier() const {
  EnsureFrontier();
  return frontier_;
}

std::span<const SegmentId> CloakRegion::FrontierAtLeast(
    std::size_t min_size, int* rings_used) const {
  assert(!segments_.empty() && "frontier of empty region");
  EnsureFrontier();
  const std::size_t target = std::max<std::size_t>(min_size, 1);
  if (frontier_.empty()) {
    if (rings_used != nullptr) *rings_used = 0;
    return {};
  }
  if (frontier_.size() >= target) {
    if (rings_used != nullptr) *rings_used = 1;
    return frontier_;
  }

  // Rare fallback: ring-1 is too small, expand ring by ring. Epoch-stamped
  // visited marks make each ring O(ring size) instead of a linear rescan.
  if (visit_mark_.size() != net_->segment_count()) {
    visit_mark_.assign(net_->segment_count(), 0);
    visit_epoch_ = 0;
  }
  if (++visit_epoch_ == 0) {  // epoch wrap: clear stale marks
    std::fill(visit_mark_.begin(), visit_mark_.end(), 0);
    visit_epoch_ = 1;
  }
  auto visited = [&](SegmentId sid) {
    return visit_mark_[roadnet::Index(sid)] == visit_epoch_;
  };
  auto mark = [&](SegmentId sid) {
    visit_mark_[roadnet::Index(sid)] = visit_epoch_;
  };

  fallback_frontier_ = frontier_;
  for (SegmentId sid : frontier_) mark(sid);
  const std::size_t ring1_size = frontier_.size();
  std::vector<SegmentId> current_ring = frontier_;
  std::vector<SegmentId> next_ring;
  int rings = 1;
  while (fallback_frontier_.size() < target) {
    next_ring.clear();
    for (SegmentId sid : current_ring) {
      net_->ForEachAdjacentSegment(sid, [&](SegmentId adj) {
        if (Contains(adj) || visited(adj)) return;
        mark(adj);
        next_ring.push_back(adj);
      });
    }
    if (next_ring.empty()) break;  // component exhausted
    ++rings;
    fallback_frontier_.insert(fallback_frontier_.end(), next_ring.begin(),
                              next_ring.end());
    current_ring.swap(next_ring);
  }
  // Ring-1 is already length-sorted; sort only the outer rings and merge.
  std::sort(fallback_frontier_.begin() + ring1_size, fallback_frontier_.end(),
            LengthOrder{net_});
  std::inplace_merge(fallback_frontier_.begin(),
                     fallback_frontier_.begin() + ring1_size,
                     fallback_frontier_.end(), LengthOrder{net_});
  if (rings_used != nullptr) *rings_used = rings;
  return fallback_frontier_;
}

std::uint64_t CloakRegion::UserCount(
    const mobility::OccupancySnapshot& occupancy) const {
  if (user_cache_occ_ == &occupancy &&
      user_cache_stamp_ == occupancy.stamp()) {
    return user_count_;
  }
  std::uint64_t users = 0;
  for (SegmentId sid : segments_) users += occupancy.count(sid);
  user_cache_occ_ = &occupancy;
  user_cache_stamp_ = occupancy.stamp();
  user_count_ = users;
  return users;
}

geo::BoundingBox CloakRegion::Bounds() const {
  if (bounds_dirty_) {
    bounds_ = geo::BoundingBox{};
    for (SegmentId sid : segments_) bounds_.Extend(net_->SegmentBounds(sid));
    bounds_dirty_ = false;
  }
  return bounds_;
}

}  // namespace rcloak::core
