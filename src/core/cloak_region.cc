#include "core/cloak_region.h"

#include <algorithm>
#include <cassert>

namespace rcloak::core {

namespace {
struct IdLess {
  bool operator()(SegmentId x, SegmentId y) const noexcept {
    return roadnet::Index(x) < roadnet::Index(y);
  }
};
}  // namespace

CloakRegion CloakRegion::FromSegments(const roadnet::RoadNetwork& net,
                                      const std::vector<SegmentId>& segments) {
  CloakRegion region(net);
  region.segments_ = segments;
  std::sort(region.segments_.begin(), region.segments_.end(), IdLess{});
  region.segments_.erase(
      std::unique(region.segments_.begin(), region.segments_.end()),
      region.segments_.end());
  return region;
}

bool CloakRegion::Contains(SegmentId id) const {
  return std::binary_search(segments_.begin(), segments_.end(), id, IdLess{});
}

void CloakRegion::Insert(SegmentId id) {
  const auto it =
      std::lower_bound(segments_.begin(), segments_.end(), id, IdLess{});
  if (it != segments_.end() && *it == id) return;
  segments_.insert(it, id);
}

void CloakRegion::Erase(SegmentId id) {
  const auto it =
      std::lower_bound(segments_.begin(), segments_.end(), id, IdLess{});
  if (it != segments_.end() && *it == id) segments_.erase(it);
}

std::vector<SegmentId> CloakRegion::SortedByLength() const {
  std::vector<SegmentId> sorted = segments_;
  std::sort(sorted.begin(), sorted.end(), LengthOrder{net_});
  return sorted;
}

std::vector<SegmentId> CloakRegion::Frontier() const {
  return FrontierAtLeast(0, nullptr);
}

std::vector<SegmentId> CloakRegion::FrontierAtLeast(std::size_t min_size,
                                                    int* rings_used) const {
  assert(!segments_.empty() && "frontier of empty region");
  // Ring-by-ring BFS from the region. `collected` holds all frontier
  // segments found so far (outside the region).
  std::vector<SegmentId> collected;
  std::vector<SegmentId> current_ring = segments_;  // ring 0 = region
  // Membership test helper over region + collected.
  auto seen = [&](SegmentId id) {
    if (Contains(id)) return true;
    return std::find(collected.begin(), collected.end(), id) !=
           collected.end();
  };

  int rings = 0;
  while (true) {
    std::vector<SegmentId> next_ring;
    for (SegmentId sid : current_ring) {
      for (SegmentId adj : net_->AdjacentSegments(sid)) {
        if (seen(adj)) continue;
        if (std::find(next_ring.begin(), next_ring.end(), adj) !=
            next_ring.end()) {
          continue;
        }
        next_ring.push_back(adj);
      }
    }
    if (next_ring.empty()) break;  // component exhausted
    ++rings;
    collected.insert(collected.end(), next_ring.begin(), next_ring.end());
    if (rings >= 1 && collected.size() >= std::max<std::size_t>(min_size, 1)) {
      break;
    }
    current_ring = std::move(next_ring);
  }
  if (rings_used != nullptr) *rings_used = rings;
  std::sort(collected.begin(), collected.end(), LengthOrder{net_});
  return collected;
}

std::uint64_t CloakRegion::UserCount(
    const mobility::OccupancySnapshot& occupancy) const {
  std::uint64_t users = 0;
  for (SegmentId sid : segments_) users += occupancy.count(sid);
  return users;
}

geo::BoundingBox CloakRegion::Bounds() const {
  geo::BoundingBox box;
  for (SegmentId sid : segments_) box.Extend(net_->SegmentBounds(sid));
  return box;
}

}  // namespace rcloak::core
