#include "core/reversecloak.h"

#include <string>

namespace rcloak::core {

Anonymizer::Anonymizer(const roadnet::RoadNetwork& net,
                       mobility::OccupancySnapshot occupancy,
                       std::uint32_t rple_T)
    : net_(&net),
      occupancy_(std::move(occupancy)),
      index_(net),
      rple_T_(rple_T),
      fingerprint_(FingerprintNetwork(net)) {}

Status Anonymizer::EnsurePreassigned() {
  if (tables_) return Status::Ok();
  auto built = BuildTransitionTables(*net_, index_, rple_T_);
  if (!built.ok()) return built.status();
  tables_ = std::move(built).value();
  return Status::Ok();
}

StatusOr<AnonymizeResult> Anonymizer::Anonymize(
    const AnonymizeRequest& request, const crypto::KeyChain& keys) {
  RCLOAK_RETURN_IF_ERROR(request.profile.Validate());
  if (!net_->IsValid(request.origin)) {
    return Status::InvalidArgument("anonymize: invalid origin segment");
  }
  if (request.context.empty()) {
    return Status::InvalidArgument(
        "anonymize: request context must be non-empty (it binds the PRNG "
        "streams and must be unique per request)");
  }
  const int num_levels = request.profile.num_levels();
  if (keys.num_levels() < num_levels) {
    return Status::InvalidArgument(
        "anonymize: key chain has fewer keys than profile levels");
  }
  if (occupancy_.segment_count() != net_->segment_count()) {
    return Status::FailedPrecondition(
        "anonymize: occupancy snapshot does not match network");
  }
  if (request.algorithm == Algorithm::kRple) {
    RCLOAK_RETURN_IF_ERROR(EnsurePreassigned());
  }

  AnonymizeResult result;
  CloakRegion region(*net_);
  region.Insert(request.origin);  // L0: only the actual user's segment
  SegmentId chain = request.origin;

  const SnapshotCounter snapshot_counter(occupancy_);
  const UserCounter& users =
      external_counter_ != nullptr
          ? *external_counter_
          : static_cast<const UserCounter&>(snapshot_counter);

  for (int level = 1; level <= num_levels; ++level) {
    const LevelRequirement& requirement = request.profile.level(level);
    StatusOr<LevelRecord> record =
        request.algorithm == Algorithm::kRge
            ? RgeAnonymizeLevel(users, region, chain, keys.LevelKey(level),
                                request.context, level, requirement,
                                &result.rge_stats)
            : RpleAnonymizeLevel(*tables_, users, region, chain,
                                 keys.LevelKey(level), request.context, level,
                                 requirement, &result.rple_stats);
    if (!record.ok()) return record.status();
    result.artifact.levels.push_back(std::move(record).value());
  }

  result.artifact.algorithm = request.algorithm;
  result.artifact.context = request.context;
  result.artifact.map_fingerprint = fingerprint_;
  result.artifact.rple_T =
      request.algorithm == Algorithm::kRple ? rple_T_ : 0;
  result.artifact.region_segments = region.segments_by_id();
  return result;
}

Deanonymizer::Deanonymizer(const roadnet::RoadNetwork& net)
    : net_(&net), index_(net), fingerprint_(FingerprintNetwork(net)) {}

Status Deanonymizer::EnsureTables(std::uint32_t T) {
  if (tables_ && tables_T_ == T) return Status::Ok();
  auto built = BuildTransitionTables(*net_, index_, T);
  if (!built.ok()) return built.status();
  tables_ = std::move(built).value();
  tables_T_ = T;
  return Status::Ok();
}

StatusOr<CloakRegion> Deanonymizer::FullRegion(
    const CloakedArtifact& artifact) const {
  if (artifact.map_fingerprint != fingerprint_) {
    return Status::FailedPrecondition(
        "artifact was built on a different road network");
  }
  for (SegmentId sid : artifact.region_segments) {
    if (!net_->IsValid(sid)) {
      return Status::DataLoss("artifact references unknown segment");
    }
  }
  return CloakRegion::FromSegments(*net_, artifact.region_segments);
}

StatusOr<CloakRegion> Deanonymizer::Reduce(
    const CloakedArtifact& artifact,
    const std::map<int, crypto::AccessKey>& granted_keys, int target_level) {
  const int num_levels = artifact.num_levels();
  if (target_level < 0 || target_level > num_levels) {
    return Status::InvalidArgument("target level out of range");
  }
  RCLOAK_ASSIGN_OR_RETURN(CloakRegion region, FullRegion(artifact));
  if (artifact.algorithm == Algorithm::kRple) {
    RCLOAK_RETURN_IF_ERROR(EnsureTables(artifact.rple_T));
  }

  // Peel levels outermost-first: L^N, L^{N-1}, ..., down to the target.
  for (int level = num_levels; level > target_level; --level) {
    const auto key_it = granted_keys.find(level);
    if (key_it == granted_keys.end()) {
      return Status::FailedPrecondition(
          "missing access key for level " + std::to_string(level) +
          "; levels must be de-anonymized outermost-first");
    }
    const LevelRecord& record =
        artifact.levels[static_cast<std::size_t>(level - 1)];
    const std::uint32_t prev_size =
        level >= 2
            ? artifact.levels[static_cast<std::size_t>(level - 2)].region_size
            : 1;  // L0 is always the single origin segment
    if (artifact.algorithm == Algorithm::kRge) {
      RCLOAK_RETURN_IF_ERROR(RgeDeanonymizeLevel(region, key_it->second,
                                                 artifact.context, level,
                                                 record, prev_size));
    } else {
      RCLOAK_RETURN_IF_ERROR(RpleDeanonymizeLevel(
          *tables_, region, key_it->second, artifact.context, level, record));
      if (region.size() != prev_size) {
        return Status::DataLoss(
            "RPLE de-anonymize: reduced region size mismatch (wrong key or "
            "corrupt artifact)");
      }
    }
  }
  return region;
}

}  // namespace rcloak::core
