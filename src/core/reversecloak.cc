#include "core/reversecloak.h"

#include <string>
#include <utility>

namespace rcloak::core {

Anonymizer::Anonymizer(const roadnet::RoadNetwork& net,
                       mobility::OccupancySnapshot occupancy,
                       std::uint32_t rple_T)
    : Anonymizer(MapContext::Create(net), std::move(occupancy), rple_T) {}

Anonymizer::Anonymizer(std::shared_ptr<const MapContext> context,
                       mobility::OccupancySnapshot occupancy,
                       std::uint32_t rple_T)
    : ctx_(std::move(context)),
      occupancy_(std::make_shared<const mobility::OccupancySnapshot>(
          std::move(occupancy))),
      rple_T_(rple_T) {}

Anonymizer::Anonymizer(Anonymizer&& other) noexcept
    : ctx_(std::move(other.ctx_)),
      occupancy_(other.occupancy_.load(std::memory_order_acquire)),
      rple_T_(other.rple_T_),
      external_counter_(other.external_counter_) {}

Anonymizer& Anonymizer::operator=(Anonymizer&& other) noexcept {
  if (this != &other) {
    ctx_ = std::move(other.ctx_);
    occupancy_.store(other.occupancy_.load(std::memory_order_acquire),
                     std::memory_order_release);
    rple_T_ = other.rple_T_;
    external_counter_ = other.external_counter_;
  }
  return *this;
}

void Anonymizer::SetOccupancy(mobility::OccupancySnapshot occupancy) {
  occupancy_.store(std::make_shared<const mobility::OccupancySnapshot>(
                       std::move(occupancy)),
                   std::memory_order_release);
}

Status Anonymizer::EnsurePreassigned() const {
  return ctx_->TablesFor(rple_T_).status();
}

Status Anonymizer::EnsureGridReady() const {
  RCLOAK_ASSIGN_OR_RETURN(const GridContext* grid, ctx_->GridFor());
  return grid->TablesFor(rple_T_).status();
}

StatusOr<AnonymizeResult> Anonymizer::Anonymize(
    const AnonymizeRequest& request, const crypto::KeyChain& keys) const {
  EngineSession session(*ctx_);
  return Anonymize(request, keys, session);
}

StatusOr<AnonymizeResult> Anonymizer::Anonymize(
    const AnonymizeRequest& request, const crypto::KeyChain& keys,
    EngineSession& session) const {
  RCLOAK_RETURN_IF_ERROR(request.profile.Validate());
  if (!ctx_->network().IsValid(request.origin)) {
    return Status::InvalidArgument("anonymize: invalid origin segment");
  }
  if (request.context.empty()) {
    return Status::InvalidArgument(
        "anonymize: request context must be non-empty (it binds the PRNG "
        "streams and must be unique per request)");
  }
  const int num_levels = request.profile.num_levels();
  if (keys.num_levels() < num_levels) {
    return Status::InvalidArgument(
        "anonymize: key chain has fewer keys than profile levels");
  }
  const CloakAlgorithm* algorithm = FindAlgorithm(request.algorithm);
  if (algorithm == nullptr) {
    return Status::InvalidArgument("anonymize: unknown algorithm id " +
                                   std::to_string(static_cast<unsigned>(
                                       request.algorithm)));
  }
  if (session.ctx != ctx_.get()) {
    return Status::InvalidArgument(
        "anonymize: session was built over a different MapContext (its "
        "region bitmap and table cache are invalid here)");
  }

  // Pin this request to one snapshot epoch: SetOccupancy on another thread
  // publishes a new shared_ptr and never mutates a published snapshot.
  const std::shared_ptr<const mobility::OccupancySnapshot> snapshot =
      occupancy_snapshot();
  if (snapshot->segment_count() != ctx_->network().segment_count()) {
    return Status::FailedPrecondition(
        "anonymize: occupancy snapshot does not match network");
  }

  session.Reset(request.origin);  // L0: only the actual user's segment
  const SnapshotCounter snapshot_counter(*snapshot);
  session.users = external_counter_ != nullptr
                      ? external_counter_
                      : static_cast<const UserCounter*>(&snapshot_counter);
  // The session outlives this request, but the counter and the user-count
  // cache point at this stack frame / snapshot epoch — drop them on every
  // exit path, success or failure.
  struct SessionCleanup {
    EngineSession* session;
    ~SessionCleanup() {
      session->users = nullptr;
      session->region.InvalidateUserCountCache();
    }
  } cleanup{&session};
  RCLOAK_RETURN_IF_ERROR(algorithm->Begin(*ctx_, session, rple_T_));

  AnonymizeResult result;
  for (int level = 1; level <= num_levels; ++level) {
    StatusOr<LevelRecord> record = algorithm->AnonymizeLevel(
        *ctx_, session, keys.LevelKey(level), request.context, level,
        request.profile.level(level));
    if (!record.ok()) return record.status();
    result.artifact.levels.push_back(std::move(record).value());
  }

  result.artifact.algorithm = request.algorithm;
  result.artifact.context = request.context;
  result.artifact.map_fingerprint = ctx_->fingerprint();
  result.artifact.rple_T = request.algorithm == Algorithm::kRple ||
                                   request.algorithm == Algorithm::kGrid
                               ? rple_T_
                               : 0;
  result.artifact.region_segments = session.region.segments_by_id();
  result.rge_stats = session.rge_stats;
  result.rple_stats = session.rple_stats;
  result.grid_stats = session.grid_stats;
  result.baseline_expansions = session.baseline_expansions;
  return result;
}

Deanonymizer::Deanonymizer(const roadnet::RoadNetwork& net)
    : ctx_(MapContext::Create(net)) {}

Deanonymizer::Deanonymizer(std::shared_ptr<const MapContext> context)
    : ctx_(std::move(context)) {}

StatusOr<CloakRegion> Deanonymizer::FullRegion(
    const CloakedArtifact& artifact) const {
  if (artifact.map_fingerprint != ctx_->fingerprint()) {
    return Status::FailedPrecondition(
        "artifact was built on a different road network");
  }
  for (SegmentId sid : artifact.region_segments) {
    if (!ctx_->network().IsValid(sid)) {
      return Status::DataLoss("artifact references unknown segment");
    }
  }
  return CloakRegion::FromSegments(ctx_->network(), artifact.region_segments);
}

StatusOr<CloakRegion> Deanonymizer::ReduceWith(
    const CloakedArtifact& artifact,
    const std::map<int, crypto::AccessKey>& granted_keys, int target_level,
    ReduceSession& session) const {
  const int num_levels = artifact.num_levels();
  if (target_level < 0 || target_level > num_levels) {
    return Status::InvalidArgument("target level out of range");
  }
  const CloakAlgorithm* algorithm = FindAlgorithm(artifact.algorithm);
  if (algorithm == nullptr) {
    return Status::InvalidArgument("reduce: unknown algorithm id " +
                                   std::to_string(static_cast<unsigned>(
                                       artifact.algorithm)));
  }
  RCLOAK_ASSIGN_OR_RETURN(CloakRegion region, FullRegion(artifact));
  RCLOAK_RETURN_IF_ERROR(algorithm->BeginReduce(*ctx_, artifact, session));

  // Peel levels outermost-first: L^N, L^{N-1}, ..., down to the target.
  for (int level = num_levels; level > target_level; --level) {
    const auto key_it = granted_keys.find(level);
    if (key_it == granted_keys.end()) {
      return Status::FailedPrecondition(
          "missing access key for level " + std::to_string(level) +
          "; levels must be de-anonymized outermost-first");
    }
    const LevelRecord& record =
        artifact.levels[static_cast<std::size_t>(level - 1)];
    const std::uint32_t prev_size =
        level >= 2
            ? artifact.levels[static_cast<std::size_t>(level - 2)].region_size
            : 1;  // L0 is always the single origin segment
    RCLOAK_RETURN_IF_ERROR(algorithm->DeanonymizeLevel(
        *ctx_, artifact, session, region, key_it->second, level, record,
        prev_size));
  }
  return region;
}

StatusOr<CloakRegion> Deanonymizer::Reduce(
    const CloakedArtifact& artifact,
    const std::map<int, crypto::AccessKey>& granted_keys,
    int target_level) const {
  ReduceSession session;
  return ReduceWith(artifact, granted_keys, target_level, session);
}

StatusOr<CloakRegion> Deanonymizer::ReduceOne(const ReduceJob& job,
                                              ReduceSession& session) const {
  if (job.artifact == nullptr || job.granted_keys == nullptr) {
    return Status::InvalidArgument("reduce batch: null artifact or key map");
  }
  return ReduceWith(*job.artifact, *job.granted_keys, job.target_level,
                    session);
}

std::vector<StatusOr<CloakRegion>> Deanonymizer::ReduceBatch(
    const std::vector<ReduceJob>& jobs) const {
  std::vector<StatusOr<CloakRegion>> results;
  results.reserve(jobs.size());
  // One session for the run: each backend's BeginReduce keeps its own
  // prerequisites (keyed by the artifact's T) and re-resolves only on
  // mismatch, so a homogeneous batch touches the table memo once and a
  // mixed batch is still exact.
  ReduceSession session;
  for (const ReduceJob& job : jobs) {
    results.push_back(ReduceOne(job, session));
  }
  return results;
}

}  // namespace rcloak::core
