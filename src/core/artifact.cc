#include "core/artifact.h"

#include <cstring>

#include "core/algorithm.h"
#include "crypto/siphash.h"

namespace rcloak::core {

namespace {
constexpr std::uint32_t kMagic = 0x524B4C43;  // "CLKR" little-endian
// Version 1: RGE / RPLE / baseline artifacts (unchanged bytes — golden SHA
// pins hold). Version 2: same layout, introduced with the grid backend so
// version-1-only decoders reject grid artifacts instead of misreading the
// grid seal/walk semantics.
constexpr std::uint8_t kVersionRoad = 1;
constexpr std::uint8_t kVersionGrid = 2;

constexpr std::uint8_t VersionFor(Algorithm algorithm) noexcept {
  return algorithm == Algorithm::kGrid ? kVersionGrid : kVersionRoad;
}
// Fixed public key: fingerprints are integrity checks, not secrets.
constexpr crypto::SipKey kFingerprintKey = {
    'r', 'c', 'l', 'o', 'a', 'k', '/', 'm',
    'a', 'p', '/', 'f', 'p', '/', 'v', '1'};
}  // namespace

std::string_view AlgorithmName(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kRge: return "RGE";
    case Algorithm::kRple: return "RPLE";
    case Algorithm::kRandomExpand: return "RandomExpand";
    case Algorithm::kGrid: return "Grid";
  }
  return "?";
}

std::uint64_t FingerprintNetwork(const roadnet::RoadNetwork& net) {
  Bytes stream;
  stream.reserve(net.segment_count() * 20 + 16);
  PutU64le(stream, net.junction_count());
  PutU64le(stream, net.segment_count());
  for (const auto& junction : net.junctions()) {
    std::uint64_t xbits = 0, ybits = 0;
    std::memcpy(&xbits, &junction.position.x, 8);
    std::memcpy(&ybits, &junction.position.y, 8);
    PutU64le(stream, xbits);
    PutU64le(stream, ybits);
  }
  for (const auto& segment : net.segments()) {
    PutU32le(stream, roadnet::Index(segment.a));
    PutU32le(stream, roadnet::Index(segment.b));
  }
  return crypto::SipHash24(kFingerprintKey, stream);
}

Bytes EncodeArtifact(const CloakedArtifact& artifact) {
  Bytes out;
  PutU32le(out, kMagic);
  out.push_back(VersionFor(artifact.algorithm));
  out.push_back(static_cast<std::uint8_t>(artifact.algorithm));
  PutVarint(out, artifact.context.size());
  out.insert(out.end(), artifact.context.begin(), artifact.context.end());
  PutU64le(out, artifact.map_fingerprint);
  PutVarint(out, artifact.rple_T);
  PutVarint(out, artifact.levels.size());
  for (const auto& level : artifact.levels) {
    PutVarint(out, level.region_size);
    PutU64le(out, level.seal);
    PutU32le(out, level.walk_len_blinded);
    PutVarint(out, level.step_bits_blinded.size());
    out.insert(out.end(), level.step_bits_blinded.begin(),
               level.step_bits_blinded.end());
  }
  PutVarint(out, artifact.region_segments.size());
  // Delta-encode sorted ids.
  std::uint32_t prev = 0;
  for (SegmentId sid : artifact.region_segments) {
    const std::uint32_t id = roadnet::Index(sid);
    PutVarint(out, id - prev);
    prev = id;
  }
  return out;
}

StatusOr<CloakedArtifact> DecodeArtifact(const Bytes& data) {
  std::size_t off = 0;
  const auto magic = GetU32le(data, &off);
  if (!magic || *magic != kMagic) {
    return Status::DataLoss("artifact: bad magic");
  }
  if (off >= data.size() ||
      (data[off] != kVersionRoad && data[off] != kVersionGrid)) {
    return Status::DataLoss("artifact: unsupported version");
  }
  const std::uint8_t version = data[off++];
  if (off >= data.size()) return Status::DataLoss("artifact: truncated");
  const std::uint8_t algorithm_raw = data[off++];
  // Valid ids are whatever the strategy registry knows — built-ins plus
  // RegisterAlgorithm'd backends — so registered algorithms' artifacts
  // round-trip the wire format without codec changes.
  if (FindAlgorithm(static_cast<Algorithm>(algorithm_raw)) == nullptr) {
    return Status::DataLoss("artifact: bad algorithm");
  }
  if (version != VersionFor(static_cast<Algorithm>(algorithm_raw))) {
    return Status::DataLoss("artifact: version/algorithm mismatch");
  }

  CloakedArtifact artifact;
  artifact.algorithm = static_cast<Algorithm>(algorithm_raw);

  const auto ctx_len = GetVarint(data, &off);
  if (!ctx_len || off + *ctx_len > data.size()) {
    return Status::DataLoss("artifact: bad context");
  }
  artifact.context.assign(data.begin() + static_cast<long>(off),
                          data.begin() + static_cast<long>(off + *ctx_len));
  off += *ctx_len;

  const auto fingerprint = GetU64le(data, &off);
  if (!fingerprint) return Status::DataLoss("artifact: truncated fingerprint");
  artifact.map_fingerprint = *fingerprint;

  const auto rple_T = GetVarint(data, &off);
  if (!rple_T) return Status::DataLoss("artifact: truncated T");
  artifact.rple_T = static_cast<std::uint32_t>(*rple_T);

  const auto num_levels = GetVarint(data, &off);
  if (!num_levels || *num_levels == 0 || *num_levels > 64) {
    return Status::DataLoss("artifact: bad level count");
  }
  artifact.levels.resize(static_cast<std::size_t>(*num_levels));
  for (auto& level : artifact.levels) {
    const auto size = GetVarint(data, &off);
    const auto seal = GetU64le(data, &off);
    const auto walk = GetU32le(data, &off);
    const auto bits_len = GetVarint(data, &off);
    if (!size || !seal || !walk || !bits_len ||
        off + *bits_len > data.size()) {
      return Status::DataLoss("artifact: truncated level record");
    }
    level.region_size = static_cast<std::uint32_t>(*size);
    level.seal = *seal;
    level.walk_len_blinded = *walk;
    level.step_bits_blinded.assign(
        data.begin() + static_cast<long>(off),
        data.begin() + static_cast<long>(off + *bits_len));
    off += *bits_len;
  }

  const auto seg_count = GetVarint(data, &off);
  if (!seg_count) return Status::DataLoss("artifact: truncated region");
  artifact.region_segments.reserve(static_cast<std::size_t>(*seg_count));
  std::uint32_t prev = 0;
  for (std::uint64_t i = 0; i < *seg_count; ++i) {
    const auto delta = GetVarint(data, &off);
    if (!delta) return Status::DataLoss("artifact: truncated segment ids");
    prev += static_cast<std::uint32_t>(*delta);
    artifact.region_segments.push_back(SegmentId{prev});
  }
  if (off != data.size()) {
    return Status::DataLoss("artifact: trailing bytes");
  }
  // Cross-field sanity: outermost level size must match the region list.
  if (artifact.levels.back().region_size != artifact.region_segments.size()) {
    return Status::DataLoss("artifact: level size / region mismatch");
  }
  return artifact;
}

}  // namespace rcloak::core
