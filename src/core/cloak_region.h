// Cloaking region over a road network: a set of road segments, with the
// derived views both ReverseCloak algorithms need — canonical length-sorted
// ordering (the paper sorts transition-table rows/columns by segment
// length) and the candidate frontier CanA.
#pragma once

#include <cstdint>
#include <vector>

#include "mobility/trace.h"
#include "roadnet/road_network.h"

namespace rcloak::core {

using roadnet::SegmentId;

// Canonical segment ordering used for every table row/column: ascending
// (length, id). The id tiebreak makes the order total and deterministic on
// maps with equal-length segments (e.g. perfect grids).
struct LengthOrder {
  const roadnet::RoadNetwork* net;
  bool operator()(SegmentId x, SegmentId y) const {
    const double lx = net->segment(x).length;
    const double ly = net->segment(y).length;
    if (lx != ly) return lx < ly;
    return roadnet::Index(x) < roadnet::Index(y);
  }
};

class CloakRegion {
 public:
  explicit CloakRegion(const roadnet::RoadNetwork& net) : net_(&net) {}

  static CloakRegion FromSegments(const roadnet::RoadNetwork& net,
                                  const std::vector<SegmentId>& segments);

  bool Contains(SegmentId id) const;
  void Insert(SegmentId id);
  void Erase(SegmentId id);
  std::size_t size() const noexcept { return segments_.size(); }
  bool empty() const noexcept { return segments_.empty(); }

  // Members sorted ascending by id (the canonical published form — id order
  // carries no information about insertion order).
  const std::vector<SegmentId>& segments_by_id() const noexcept {
    return segments_;
  }

  // Members sorted by the canonical (length, id) order: the table's rows.
  std::vector<SegmentId> SortedByLength() const;

  // Ring-1 frontier: segments adjacent to the region but outside it,
  // sorted by (length, id): the table's columns.
  std::vector<SegmentId> Frontier() const;

  // Frontier for the RGE transition table. Starts from ring-1; while the
  // candidate set is smaller than `min_size`, deterministically expands by
  // one more adjacency ring ("links rebuilt on the fly", DESIGN.md §3).
  // `rings_used` (optional) reports how many rings were taken.
  std::vector<SegmentId> FrontierAtLeast(std::size_t min_size,
                                         int* rings_used = nullptr) const;

  // Users covered by the region under the given occupancy snapshot.
  std::uint64_t UserCount(const mobility::OccupancySnapshot& occupancy) const;

  // Bounding box of all member segments.
  geo::BoundingBox Bounds() const;

  const roadnet::RoadNetwork& network() const noexcept { return *net_; }

 private:
  const roadnet::RoadNetwork* net_;
  // Sorted-by-id vector; regions stay small (≤ a few thousand segments),
  // so ordered-vector insert/erase beats hash sets on locality and gives a
  // deterministic canonical form for free.
  std::vector<SegmentId> segments_;
};

}  // namespace rcloak::core
