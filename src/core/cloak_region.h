// Cloaking region over a road network: a set of road segments, with the
// derived views both ReverseCloak algorithms need — canonical length-sorted
// ordering (the paper sorts transition-table rows/columns by segment
// length) and the candidate frontier CanA.
//
// The region is an *incremental engine*: every derived view is maintained
// under Insert/Erase instead of being recomputed from scratch, which is
// what turns per-level expansion from O(n^2) into O(log n) amortized per
// step (docs/PERFORMANCE.md):
//   * membership      — dense per-network bitmap, O(1);
//   * id order        — sorted vector (canonical published form);
//   * length order    — lazily built, dirty-flagged cache; once built it
//                       is maintained by O(log n) positional insert/erase;
//   * frontier        — lazily enabled adjacency counters; once enabled,
//                       Insert/Erase apply adjacency deltas so the ring-1
//                       frontier needs no BFS;
//   * bounds          — extended on Insert, recomputed lazily after Erase;
//   * user count      — running sum against one occupancy snapshot, so
//                       Satisfied() checks stop re-scanning the region.
// All views stay bit-identical to their from-scratch definitions; the
// region-engine property test pins that against a naive reference.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mobility/trace.h"
#include "roadnet/road_network.h"

namespace rcloak::core {

using roadnet::SegmentId;

// Canonical segment ordering used for every table row/column: ascending
// (length, id). The id tiebreak makes the order total and deterministic on
// maps with equal-length segments (e.g. perfect grids).
struct LengthOrder {
  const roadnet::RoadNetwork* net;
  bool operator()(SegmentId x, SegmentId y) const {
    const double lx = net->segment(x).length;
    const double ly = net->segment(y).length;
    if (lx != ly) return lx < ly;
    return roadnet::Index(x) < roadnet::Index(y);
  }
};

class CloakRegion {
 public:
  explicit CloakRegion(const roadnet::RoadNetwork& net)
      : net_(&net), member_(net.segment_count(), 0) {}

  static CloakRegion FromSegments(const roadnet::RoadNetwork& net,
                                  const std::vector<SegmentId>& segments);

  bool Contains(SegmentId id) const noexcept {
    return member_[roadnet::Index(id)] != 0;
  }
  void Insert(SegmentId id);
  void Erase(SegmentId id);
  // Resets to the empty region while keeping allocations, so per-worker
  // engine sessions can reuse one region across requests. Equivalent to a
  // freshly constructed region over the same network.
  void Clear();
  std::size_t size() const noexcept { return segments_.size(); }
  bool empty() const noexcept { return segments_.empty(); }

  // Members sorted ascending by id (the canonical published form — id order
  // carries no information about insertion order).
  const std::vector<SegmentId>& segments_by_id() const noexcept {
    return segments_;
  }

  // Members sorted by the canonical (length, id) order: the table's rows.
  // The cache is built on first use and maintained incrementally after.
  const std::vector<SegmentId>& LengthSorted() const;

  // Copying wrapper kept for callers that want to own the vector.
  std::vector<SegmentId> SortedByLength() const { return LengthSorted(); }

  // Rank of `id` in the (length, id) order, or size() if not a member.
  std::size_t LengthRankOf(SegmentId id) const;

  // Ring-1 frontier: segments adjacent to the region but outside it,
  // sorted by (length, id): the table's columns. The reference stays valid
  // until the next Insert/Erase.
  const std::vector<SegmentId>& Frontier() const;

  // Frontier for the RGE transition table. Starts from ring-1; while the
  // candidate set is smaller than `min_size`, deterministically expands by
  // one more adjacency ring ("links rebuilt on the fly", DESIGN.md §3).
  // `rings_used` (optional) reports how many rings were taken. The span
  // stays valid until the next call or the next Insert/Erase.
  std::span<const SegmentId> FrontierAtLeast(std::size_t min_size,
                                             int* rings_used = nullptr) const;

  // Users covered by the region under the given occupancy snapshot. The
  // first call against a snapshot scans the region and starts a running
  // count that Insert/Erase keep current; subsequent calls against the
  // same (unmutated) snapshot are O(1). The snapshot must outlive the
  // region or the cache must be dropped with InvalidateUserCountCache().
  std::uint64_t UserCount(const mobility::OccupancySnapshot& occupancy) const;
  void InvalidateUserCountCache() const noexcept {
    user_cache_occ_ = nullptr;
  }

  // Bounding box of all member segments.
  geo::BoundingBox Bounds() const;

  const roadnet::RoadNetwork& network() const noexcept { return *net_; }

 private:
  void EnsureFrontier() const;
  void FrontierInsertDeltas(SegmentId id);
  void FrontierEraseDeltas(SegmentId id);

  // Multi-ring fallback engine (see the member block below).
  std::uint32_t FallbackDist(SegmentId id) const noexcept;
  void FallbackReset() const;
  std::size_t FallbackGrowRing() const;
  void FallbackOnInsert(SegmentId id);

  const roadnet::RoadNetwork* net_;
  // O(1) membership; one byte per network segment.
  std::vector<std::uint8_t> member_;
  // Sorted-by-id members: the deterministic canonical form.
  std::vector<SegmentId> segments_;

  // ---- length-order cache ------------------------------------------------
  mutable std::vector<SegmentId> by_length_;
  mutable bool length_dirty_ = true;

  // ---- frontier engine (lazily enabled) ----------------------------------
  // adjacent_members_[s] = number of region members adjacent to segment s;
  // frontier_ = non-members with adjacent_members_ > 0, length-sorted.
  mutable bool frontier_enabled_ = false;
  mutable std::vector<std::uint32_t> adjacent_members_;
  mutable std::vector<SegmentId> frontier_;

  // ---- multi-ring fallback engine (carried across Inserts) ---------------
  // When ring-1 cannot satisfy FrontierAtLeast, the fallback materializes
  // BFS rings 2..R and KEEPS them: while the region only grows, every
  // segment's distance-to-region only shrinks, so Insert() runs a bounded
  // decrease-only BFS wave (classic dynamic-BFS edge insertion) instead of
  // the next call re-walking and re-sorting the whole candidate ball —
  // the path-topology hot spot of bench_e11. Erase/Clear invalidate; the
  // next fallback call rebuilds from ring 1. All outputs stay bit-identical
  // to the from-scratch BFS (pinned by region_engine_test).
  //
  // Distances are derived, not stored, for rings 0/1 (membership bitmap /
  // adjacency counters); fb_dist_ holds exact distances >= 2 for every
  // segment within the built horizon, valid iff its mark equals fb_epoch_.
  mutable bool fb_live_ = false;
  mutable std::uint32_t fb_epoch_ = 0;
  mutable int fb_rings_built_ = 1;  // deepest materialized ring
  mutable int fb_rings_out_ = 1;    // rings currently merged into fb_sorted_
  mutable std::vector<std::uint32_t> fb_dist_;
  mutable std::vector<std::uint32_t> fb_dist_mark_;
  // Segment is in fb_sorted_ iff its mark equals fb_epoch_.
  mutable std::vector<std::uint32_t> fb_out_mark_;
  // Ring r (r >= 2) members at index r-2; entries are lazily deleted (an
  // entry is live iff the segment's current distance still equals r).
  mutable std::vector<std::vector<SegmentId>> fb_rings_;
  mutable std::vector<std::size_t> fb_ring_count_;  // live entries per ring
  // The fallback result: rings 1..fb_rings_out_, length-sorted.
  mutable std::vector<SegmentId> fb_sorted_;
  mutable std::vector<SegmentId> fb_joins_;    // pending output additions
  mutable std::vector<SegmentId> fb_removed_;  // members pending removal
  mutable std::vector<SegmentId> fb_join_batch_;  // per-call scratch
  mutable std::vector<SegmentId> fb_wave_;        // BFS wave scratch
  mutable std::vector<std::uint32_t> fb_wave_dist_;

  // ---- bounds cache ------------------------------------------------------
  mutable geo::BoundingBox bounds_;
  mutable bool bounds_dirty_ = false;  // empty region: clean empty box

  // ---- running user count ------------------------------------------------
  mutable const mobility::OccupancySnapshot* user_cache_occ_ = nullptr;
  mutable std::uint64_t user_cache_stamp_ = 0;
  mutable std::uint64_t user_count_ = 0;
};

}  // namespace rcloak::core
