// CloakAlgorithm — the pluggable-strategy layer of the engine.
//
// RGE, RPLE and the non-reversible random-expansion baseline are stateless
// strategies over (immutable MapContext, per-request EngineSession). The
// facade (core/reversecloak.h) dispatches AnonymizeRequest::algorithm
// through the registry below instead of hard-coding each backend, and the
// de-anonymizer replays levels through the same strategy object — the
// "computationally recoverable camouflage" shape: a reversible transform
// plugged in over shared public context.
//
// Thread model: strategy objects hold no mutable state, the MapContext is
// immutable, and every mutable byte of a request lives in its
// EngineSession — so any number of threads may run Anonymize concurrently
// against one context as long as each uses its own session.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/artifact.h"
#include "core/cloak_region.h"
#include "core/grid_cloak.h"
#include "core/map_context.h"
#include "core/privacy_profile.h"
#include "core/rge.h"
#include "core/rple.h"
#include "core/user_counter.h"
#include "crypto/keyed_prng.h"
#include "util/status.h"

namespace rcloak::core {

// Per-request mutable scratch: the cloaking region under construction, the
// expansion chain position, the user counter for this request's snapshot,
// resolved table pointers and run statistics. Sessions are cheap to Reset
// and are meant to be reused (one per server worker); they must never be
// shared between concurrent requests.
struct EngineSession {
  explicit EngineSession(const MapContext& ctx)
      : ctx(&ctx), region(ctx.network()) {}

  // Re-arms the session for a new request rooted at `origin`. Keeps the
  // region's allocations and the resolved table pointer (context-derived
  // and immutable, so valid across requests over the same context);
  // equivalent to constructing a fresh session otherwise.
  void Reset(SegmentId origin) {
    region.Clear();
    region.Insert(origin);
    chain = origin;
    users = nullptr;
    rge_stats = RgeStats{};
    rple_stats = RpleStats{};
    grid_stats = GridStats{};
    baseline_expansions = 0;
  }

  // The context this session was built over; the facade rejects sessions
  // used with an engine over a different context (the region bitmap and
  // the cached table pointer are only valid for this one).
  const MapContext* ctx;
  CloakRegion region;
  SegmentId chain = roadnet::kInvalidSegment;
  // The k-anonymity counter for this request (points at caller-owned
  // state; set by the facade before level expansion).
  const UserCounter* users = nullptr;
  // RPLE: the context's pre-assigned tables for `tables_T`, resolved on
  // first use and kept across Reset so steady-state requests skip the
  // context's memo lock entirely.
  const TransitionTables* tables = nullptr;
  std::uint32_t tables_T = 0;
  // Grid backend: the context's cell index and per-T cell-transition
  // tables, resolved on first use like `tables` above; `grid_cell` is the
  // cell-walk chain position (the grid analogue of `chain`), re-derived
  // from the origin by GridCloak's Begin on every request.
  const GridContext* grid = nullptr;
  const GridTransitionTables* grid_tables = nullptr;
  std::uint32_t grid_tables_T = 0;
  std::uint32_t grid_cell = 0;
  RgeStats rge_stats;
  RpleStats rple_stats;
  GridStats grid_stats;
  std::uint64_t baseline_expansions = 0;
};

// Per-reduction scratch: shared prerequisites a strategy resolves once
// before the peel loop (e.g. the RPLE tables for the artifact's T). A
// session may be reused across artifacts — BeginReduce runs before every
// reduction and skips work already resolved (Deanonymizer::ReduceBatch
// leans on this to amortize table resolution over a batch).
struct ReduceSession {
  const TransitionTables* tables = nullptr;
  // The T the resolved tables belong to (meaningful iff tables != nullptr).
  std::uint32_t tables_T = 0;
  // Grid backend prerequisites (same reuse contract as `tables`).
  const GridContext* grid = nullptr;
  const GridTransitionTables* grid_tables = nullptr;
  std::uint32_t grid_tables_T = 0;
};

// A cloaking backend. Implementations are stateless (all methods const,
// no mutable members) and registered process-wide; see FindAlgorithm.
class CloakAlgorithm {
 public:
  virtual ~CloakAlgorithm() = default;

  virtual Algorithm id() const noexcept = 0;
  virtual std::string_view name() const noexcept = 0;
  // Whether artifacts can be reduced level by level with keys.
  virtual bool reversible() const noexcept { return true; }

  // Called once per request, after session.Reset: resolves shared immutable
  // prerequisites from the context into the session (e.g. the RPLE tables
  // for `rple_T`). Default: nothing to resolve.
  virtual Status Begin(const MapContext& ctx, EngineSession& session,
                       std::uint32_t rple_T) const;

  // Expands session.region by one privacy level until `requirement` holds,
  // returning the sealed level record. On failure the session region and
  // chain are rolled back to the previous level.
  virtual StatusOr<LevelRecord> AnonymizeLevel(
      const MapContext& ctx, EngineSession& session,
      const crypto::AccessKey& key, const std::string& request_context,
      int level_index, const LevelRequirement& requirement) const = 0;

  // Called once per Reduce before the peel loop: resolves shared
  // prerequisites for `artifact` into the reduce session (e.g. the RPLE
  // tables for artifact.rple_T) so the per-level peels touch no locks.
  // Default: nothing to resolve.
  virtual Status BeginReduce(const MapContext& ctx,
                             const CloakedArtifact& artifact,
                             ReduceSession& session) const;

  // Peels one level off `region` (which must be the level-`level_index`
  // region of `artifact`), leaving the level below.
  virtual Status DeanonymizeLevel(const MapContext& ctx,
                                  const CloakedArtifact& artifact,
                                  ReduceSession& session, CloakRegion& region,
                                  const crypto::AccessKey& key,
                                  int level_index, const LevelRecord& record,
                                  std::uint32_t prev_region_size) const = 0;
};

// Registry. The four built-ins (RGE, RPLE, RandomExpand, Grid) are always
// present; RegisterAlgorithm adds out-of-tree strategies. Lookup is by the
// wire id. FindAlgorithm returns nullptr for unknown ids.
const CloakAlgorithm* FindAlgorithm(Algorithm id) noexcept;
std::vector<const CloakAlgorithm*> RegisteredAlgorithms();
// Fails with InvalidArgument if the id is already taken.
Status RegisterAlgorithm(const CloakAlgorithm* algorithm);

}  // namespace rcloak::core
