// Grid/Hilbert-cell cloaking — the non-road-constrained backend.
//
// RGE and RPLE cloak along the road graph; commodity LBS traffic is mostly
// free-space (pedestrians, drones, indoor users), where the natural cloaking
// unit is a uniform grid cell (Casper-style quadrant k-anonymity). GridCloak
// keeps the ReverseCloak contract — a keyed, exactly reversible multi-level
// expansion — but expands cell by cell instead of segment by segment:
//
//   * the map's bounding box is covered by a W x W grid (W a power of two)
//     and every segment is assigned to the cell holding its midpoint;
//   * cells are canonically ordered by their Hilbert-curve rank, which keeps
//     rank-adjacent cells spatially adjacent (the grid analogue of the
//     paper's length-sorted canonical order);
//   * cloaking is an RPLE-style keyed walk over cells. The per-T transition
//     tables are torus translations (slot j moves by a fixed offset with
//     wraparound), so FT[c][j] = d  ⟺  BT[d][j] = c holds by construction
//     and the tables are hole-free on ANY grid, including degenerate ones —
//     the walk replays backwards exactly;
//   * a step entering a cell whose segments are not yet covered pulls the
//     whole cell into the region ("added a cell" step bits, key-blinded as
//     in RPLE); empty cells are walked through without adding anything,
//     which is precisely the free-space case road algorithms cannot serve.
//
// Level 0 is still the user's exact segment. Level 1 therefore first
// completes the origin's cell and seals the origin's rank *within* that
// cell into the level record (key-blinded, seal high bits), so a full
// reduction recovers the exact segment, not just the cell.
//
// Published regions are ordinary segment sets: artifacts, Deanonymizer,
// the sharded server and the continuous session pool (validity region =
// the cloak's cell set, as a segment region) all work unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/artifact.h"
#include "core/cloak_region.h"
#include "core/privacy_profile.h"
#include "core/user_counter.h"
#include "crypto/keyed_prng.h"
#include "util/status.h"

namespace rcloak::core {

// Hilbert-curve rank of cell (x, y) on a side x side grid (side a power of
// two; side == 1 maps everything to rank 0). Bijective with HilbertCellOf.
std::uint32_t HilbertRankOfCell(std::uint32_t side, std::uint32_t x,
                                std::uint32_t y) noexcept;
void HilbertCellOf(std::uint32_t side, std::uint32_t rank, std::uint32_t* x,
                   std::uint32_t* y) noexcept;

// Instrumentation of one grid anonymization run (bench_e21).
struct GridStats {
  std::uint64_t walk_steps = 0;
  // Steps that landed in an already-covered or empty cell.
  std::uint64_t revisits = 0;
  std::uint64_t cells_added = 0;
};

// Hole-free forward/backward cell-transition tables for one fan-out T:
// slot j is the torus translation by the j-th canonical offset (N, NE, E,
// ... spiralling outwards), so every slot is a permutation of the cells and
// the RPLE pairing invariant holds with no completion pass.
class GridTransitionTables {
 public:
  std::uint32_t T() const noexcept { return t_; }
  std::uint32_t num_cells() const noexcept { return num_cells_; }

  std::uint32_t Forward(std::uint32_t cell, std::uint32_t slot) const {
    return ft_[static_cast<std::size_t>(cell) * t_ + slot];
  }
  std::uint32_t Backward(std::uint32_t cell, std::uint32_t slot) const {
    return bt_[static_cast<std::size_t>(cell) * t_ + slot];
  }

  // FT[c][j] = d ⟺ BT[d][j] = c over every cell and slot.
  Status ValidatePairing() const;

  std::size_t MemoryBytes() const noexcept {
    return (ft_.capacity() + bt_.capacity()) * sizeof(std::uint32_t);
  }

 private:
  friend class GridContext;
  std::uint32_t t_ = 0;
  std::uint32_t num_cells_ = 0;
  std::vector<std::uint32_t> ft_;
  std::vector<std::uint32_t> bt_;
};

// Immutable cell index over one road network: cell assignment, Hilbert
// ranks, per-cell segment lists, and the per-T transition-table memo.
// Deterministic in (network, side) — anonymizer and de-anonymizer derive
// identical grids from their map copies. Thread-safe to share (the only
// internal synchronization is the build-once table memo, mirroring
// MapContext::TablesFor). Obtain one via MapContext::GridFor.
class GridContext {
 public:
  // side == 0 picks DefaultSide(net). Fails on an empty network.
  static StatusOr<std::unique_ptr<const GridContext>> Build(
      const roadnet::RoadNetwork& net, std::uint32_t side = 0);

  // Smallest power of two with ~8 segments per occupied cell on average,
  // clamped to [1, 1024]. A pure function of the segment count, so both
  // sides of the protocol agree without a wire field.
  static std::uint32_t DefaultSide(const roadnet::RoadNetwork& net) noexcept;

  GridContext(const GridContext&) = delete;
  GridContext& operator=(const GridContext&) = delete;

  std::uint32_t side() const noexcept { return side_; }
  std::uint32_t num_cells() const noexcept { return side_ * side_; }
  // Cells holding at least one segment midpoint.
  std::uint32_t occupied_cells() const noexcept { return occupied_cells_; }

  // Cell of a segment's midpoint; cell index is y * side + x.
  std::uint32_t CellOf(SegmentId id) const {
    return cell_of_segment_[roadnet::Index(id)];
  }
  // Segments assigned to `cell`, ascending by id (possibly empty).
  std::span<const SegmentId> CellSegments(std::uint32_t cell) const {
    return {cell_segments_.data() + cell_offsets_[cell],
            cell_offsets_[cell + 1] - cell_offsets_[cell]};
  }
  std::uint32_t HilbertRank(std::uint32_t cell) const {
    return hilbert_of_cell_[cell];
  }
  std::uint32_t CellOfHilbertRank(std::uint32_t rank) const {
    return cell_of_hilbert_[rank];
  }

  // The transition tables for fan-out T (2 <= T <= 64). Built on first use
  // (thread-safe, build-once per distinct T) and memoized for the lifetime
  // of the context; returned pointer is stable, tables immutable.
  StatusOr<const GridTransitionTables*> TablesFor(std::uint32_t T) const;

  // How many table builds have run (memoization pin for tests).
  std::size_t table_builds() const;

 private:
  GridContext() = default;

  std::uint32_t side_ = 1;
  std::uint32_t occupied_cells_ = 0;
  std::vector<std::uint32_t> cell_of_segment_;
  // CSR layout: cell_segments_[cell_offsets_[c] .. cell_offsets_[c+1]).
  std::vector<std::uint32_t> cell_offsets_;
  std::vector<SegmentId> cell_segments_;
  std::vector<std::uint32_t> hilbert_of_cell_;
  std::vector<std::uint32_t> cell_of_hilbert_;

  mutable std::mutex tables_mutex_;
  mutable std::vector<std::pair<std::uint32_t,
                                std::unique_ptr<const GridTransitionTables>>>
      tables_by_T_;
  mutable std::size_t table_builds_ = 0;
};

// Keyed cell-walk level expansion; mirrors RpleAnonymizeLevel's contract.
// `walk_cell` is the chain seed (the origin's cell for level 1 / the
// previous level's walk end) and is updated to this level's walk end on
// success. Level 1 must be entered with region == {origin}; it completes
// the origin's cell before walking and seals the origin's in-cell rank.
StatusOr<LevelRecord> GridAnonymizeLevel(
    const GridContext& grid, const GridTransitionTables& tables,
    const UserCounter& users, CloakRegion& region, std::uint32_t& walk_cell,
    const crypto::AccessKey& key, const std::string& context,
    int level_index, const LevelRequirement& requirement,
    GridStats* stats = nullptr);

// Reverse walk replay; removes this level's cells from `region` (which must
// currently be the level-`level_index` region). For level 1 it additionally
// peels the origin cell down to the exact origin segment.
Status GridDeanonymizeLevel(const GridContext& grid,
                            const GridTransitionTables& tables,
                            CloakRegion& region, const crypto::AccessKey& key,
                            const std::string& context, int level_index,
                            const LevelRecord& record);

}  // namespace rcloak::core
