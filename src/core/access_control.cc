#include "core/access_control.h"

namespace rcloak::core {

Status AccessControlProfile::RegisterRequester(const std::string& name,
                                               int privilege) {
  if (name.empty()) {
    return Status::InvalidArgument("requester name must be non-empty");
  }
  if (privilege < 0 || privilege > num_levels()) {
    return Status::InvalidArgument(
        "privilege must be in [0, " + std::to_string(num_levels()) + "]");
  }
  privileges_[name] = privilege;
  return Status::Ok();
}

Status AccessControlProfile::RevokeRequester(const std::string& name) {
  if (privileges_.erase(name) == 0) {
    return Status::NotFound("unknown requester: " + name);
  }
  return Status::Ok();
}

StatusOr<int> AccessControlProfile::PrivilegeOf(
    const std::string& name) const {
  const auto it = privileges_.find(name);
  if (it == privileges_.end()) {
    return Status::NotFound("unknown requester: " + name);
  }
  return it->second;
}

StatusOr<KeyGrant> AccessControlProfile::GrantKeys(const std::string& name) {
  RCLOAK_ASSIGN_OR_RETURN(const int privilege, PrivilegeOf(name));
  KeyGrant grant;
  grant.target_level = num_levels() - privilege;
  for (int level = num_levels(); level > grant.target_level; --level) {
    grant.keys.emplace(level, keys_.LevelKey(level));
  }
  audit_log_.push_back(
      {name, privilege, grant.target_level, next_sequence_++});
  return grant;
}

}  // namespace rcloak::core
