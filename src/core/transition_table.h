// RGE transition table (paper §III-A, Fig. 2).
//
// Rows are the current cloaking region CloakA and columns the candidate set
// CanA, both sorted by segment length. Cell (i, j) (1-based in the paper)
// holds transition value ((i-1) + (j-1)) mod |CanA|, so no value repeats in
// a row or a column whenever |CloakA| <= |CanA| — which the caller
// guarantees via CloakRegion::FrontierAtLeast. A pseudo-random pick value
// p = R mod |CanA| then selects:
//   * forward (anonymization):   the column j in the last-added segment's
//     row with value p — the next segment to add;
//   * backward (de-anonymization): the row i in the last-removed segment's
//     column with value p — the previously added segment.
// Both directions share one table, which is what makes the expansion
// reversible.
//
// The closed forms below avoid materializing the table; Materialize() is
// provided for tests, worked examples and the Fig. 2 rendering, and is
// verified equivalent by unit tests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "core/cloak_region.h"
#include "util/status.h"

namespace rcloak::core {

// Non-owning view of one RGE transition table, used on the hot expansion
// path. Rows and cols must already be sorted by (length, id) — exactly what
// CloakRegion::LengthSorted() and FrontierAtLeast() produce — which lets
// index lookups run as O(log n) binary searches instead of linear scans,
// and lets the per-step table "build" degenerate to storing two spans.
// Semantics are identical to TransitionTable (same closed forms, same
// error messages); the equivalence is unit-tested.
class TransitionTableView {
 public:
  TransitionTableView(std::span<const SegmentId> rows,
                      std::span<const SegmentId> cols,
                      const roadnet::RoadNetwork& net);

  std::size_t row_count() const noexcept { return rows_.size(); }
  std::size_t col_count() const noexcept { return cols_.size(); }

  StatusOr<SegmentId> Forward(SegmentId last_added, std::uint64_t draw) const;
  StatusOr<SegmentId> Backward(SegmentId last_removed,
                               std::uint64_t draw) const;

 private:
  std::span<const SegmentId> rows_;
  std::span<const SegmentId> cols_;
  const roadnet::RoadNetwork* net_;
};

class TransitionTable {
 public:
  // `rows` = CloakA sorted by (length, id); `cols` = CanA sorted likewise.
  // Requires rows.size() <= cols.size() (collision-free regime) and
  // cols non-empty.
  TransitionTable(std::vector<SegmentId> rows, std::vector<SegmentId> cols);

  std::size_t row_count() const noexcept { return rows_.size(); }
  std::size_t col_count() const noexcept { return cols_.size(); }

  // Transition value of cell (row, col), 0-based.
  std::uint32_t ValueAt(std::size_t row, std::size_t col) const noexcept {
    return static_cast<std::uint32_t>((row + col) % cols_.size());
  }

  // Forward: given the last-added segment (a row) and raw draw R, returns
  // the segment to add next. Fails if `last_added` is not a row member.
  StatusOr<SegmentId> Forward(SegmentId last_added, std::uint64_t draw) const;

  // Backward: given the last-removed segment (a column) and the same draw
  // R, returns the segment that had been added just before it. Fails if
  // `last_removed` is not a column member or the recovered row index is out
  // of range (corrupt artifact / wrong key).
  StatusOr<SegmentId> Backward(SegmentId last_removed,
                               std::uint64_t draw) const;

  // Dense table of transition values, rows x cols; for tests and demos.
  std::vector<std::vector<std::uint32_t>> Materialize() const;

  // Pretty-printer of the worked example (mirrors Fig. 2's table).
  void Print(std::ostream& os) const;

  const std::vector<SegmentId>& rows() const noexcept { return rows_; }
  const std::vector<SegmentId>& cols() const noexcept { return cols_; }

 private:
  StatusOr<std::size_t> RowIndexOf(SegmentId id) const;
  StatusOr<std::size_t> ColIndexOf(SegmentId id) const;

  std::vector<SegmentId> rows_;
  std::vector<SegmentId> cols_;
};

}  // namespace rcloak::core
