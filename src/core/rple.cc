#include "core/rple.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>
#include <unordered_set>

#include "core/rge.h"  // SealRank / OpenSeal
#include "core/walk_codec.h"

namespace rcloak::core {

namespace {

using roadnet::Index;
using roadnet::kInvalidSegment;
using roadnet::RoadNetwork;
using roadnet::SpatialIndex;

// Per-segment link candidates: graph-adjacent segments first (cloaking
// should stay road-continuous), then spatially nearest others; both groups
// ordered by midpoint distance with id tiebreak.
std::vector<SegmentId> LinkCandidates(const RoadNetwork& net,
                                      const SpatialIndex& index, SegmentId s,
                                      std::size_t want) {
  const geo::Point mid = net.SegmentMidpoint(s);
  auto by_distance = [&](SegmentId x, SegmentId y) {
    const double dx = geo::DistanceSquared(net.SegmentMidpoint(x), mid);
    const double dy = geo::DistanceSquared(net.SegmentMidpoint(y), mid);
    if (dx != dy) return dx < dy;
    return Index(x) < Index(y);
  };

  std::vector<SegmentId> out = net.AdjacentSegments(s);
  std::sort(out.begin(), out.end(), by_distance);
  if (out.size() < want) {
    // Over-fetch: nearest() includes s itself and the adjacent ones.
    std::unordered_set<std::uint32_t> chosen;
    chosen.reserve(out.size());
    for (SegmentId sid : out) chosen.insert(Index(sid));
    const auto near = index.Nearest(mid, want + out.size() + 1);
    for (SegmentId cand : near) {
      if (cand == s) continue;
      if (chosen.contains(Index(cand))) continue;
      out.push_back(cand);
      if (out.size() >= want) break;
    }
  }
  if (out.size() > want) out.resize(want);
  return out;
}

}  // namespace

Status TransitionTables::ValidatePairing() const {
  const std::size_t count = segment_count();
  for (std::size_t s = 0; s < count; ++s) {
    for (std::uint32_t j = 0; j < t_; ++j) {
      const SegmentId target = ft_[s * t_ + j];
      if (target == kInvalidSegment) {
        return Status::Internal("FT hole at segment " + std::to_string(s));
      }
      if (Index(target) == s) {
        return Status::Internal("FT self-link at segment " +
                                std::to_string(s));
      }
      if (bt_[Index(target) * t_ + j] !=
          SegmentId{static_cast<std::uint32_t>(s)}) {
        return Status::Internal("FT/BT pairing violated at segment " +
                                std::to_string(s) + " slot " +
                                std::to_string(j));
      }
    }
  }
  for (std::size_t s = 0; s < count; ++s) {
    for (std::uint32_t j = 0; j < t_; ++j) {
      if (bt_[s * t_ + j] == kInvalidSegment) {
        return Status::Internal("BT hole at segment " + std::to_string(s));
      }
    }
  }
  return Status::Ok();
}

StatusOr<TransitionTables> BuildTransitionTables(const RoadNetwork& net,
                                                 const SpatialIndex& index,
                                                 std::uint32_t T,
                                                 unsigned preassign_threads) {
  const std::size_t count = net.segment_count();
  if (T < 2) return Status::InvalidArgument("RPLE requires T >= 2");
  if (count <= 2 * static_cast<std::size_t>(T) + 1) {
    return Status::InvalidArgument(
        "RPLE pre-assignment requires segment count > 2T + 1");
  }

  // ---- Step 1: T-regular link digraph ----------------------------------
  // Greedy rounds over preference ranks, capped in/out degrees, then a
  // deficit-fill pass. Total capacity equals total demand (count * T each
  // side), so completion always succeeds on any graph with count > 2T+1.
  std::vector<std::vector<SegmentId>> targets(count);
  std::vector<std::uint32_t> out_deg(count, 0), in_deg(count, 0);
  const std::size_t preference_width = 4 * static_cast<std::size_t>(T);
  std::vector<std::vector<SegmentId>> preferences(count);

  // Preference pass: each slot is an independent pure function of
  // (net, index, s), so threads race only on the chunk counter — the
  // slot-indexed writes make the merge deterministic and the tables
  // byte-identical for any thread count.
  unsigned threads =
      preassign_threads != 0 ? preassign_threads
                             : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads, 64);
  const std::size_t kChunk = 256;
  if (threads > 1 && count > kChunk) {
    std::atomic<std::size_t> next_chunk{0};
    auto preference_worker = [&] {
      for (;;) {
        const std::size_t begin = next_chunk.fetch_add(kChunk);
        if (begin >= count) return;
        const std::size_t end = std::min(begin + kChunk, count);
        for (std::size_t s = begin; s < end; ++s) {
          preferences[s] = LinkCandidates(
              net, index, SegmentId{static_cast<std::uint32_t>(s)},
              preference_width);
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back(preference_worker);
    }
    for (auto& thread : pool) thread.join();
  } else {
    for (std::size_t s = 0; s < count; ++s) {
      preferences[s] = LinkCandidates(
          net, index, SegmentId{static_cast<std::uint32_t>(s)},
          preference_width);
    }
  }
  for (std::size_t s = 0; s < count; ++s) targets[s].reserve(T);

  // Arc membership as a hash set of packed (tail, head) pairs: the deficit
  // fill and exchange repair below probe has_arc inside O(count)-wide scans,
  // where the old per-tail linear find turned them quadratic.
  std::unordered_set<std::uint64_t> arc_set;
  arc_set.reserve(count * T);
  auto arc_key = [](std::size_t s, SegmentId t) {
    return (static_cast<std::uint64_t>(s) << 32) | Index(t);
  };
  auto has_arc = [&](std::size_t s, SegmentId t) {
    return arc_set.contains(arc_key(s, t));
  };
  auto add_arc = [&](std::size_t s, SegmentId t) {
    targets[s].push_back(t);
    arc_set.insert(arc_key(s, t));
    ++out_deg[s];
    ++in_deg[Index(t)];
  };

  for (std::size_t rank = 0; rank < preference_width; ++rank) {
    for (std::size_t s = 0; s < count; ++s) {
      if (out_deg[s] >= T) continue;
      if (rank >= preferences[s].size()) continue;
      const SegmentId t = preferences[s][rank];
      if (in_deg[Index(t)] >= T || has_arc(s, t)) continue;
      add_arc(s, t);
    }
  }

  // Deficit fill: spare head capacity is matched to deficient tails.
  // Spare heads are searched nearest-first so completion links stay local —
  // a long-range link would let the cloaking walk "teleport" and blow the
  // spatial tolerance. The resumable NearestCursor yields candidates in
  // exactly the (distance, id) order the old doubled-k re-queries walked,
  // without re-scanning from scratch per doubling. Global scan is the last
  // resort that guarantees completion (capacity equals demand).
  for (std::size_t s = 0; s < count; ++s) {
    if (out_deg[s] >= T) continue;
    const geo::Point mid =
        net.SegmentMidpoint(SegmentId{static_cast<std::uint32_t>(s)});
    SpatialIndex::NearestCursor cursor(index, mid);
    while (out_deg[s] < T) {
      const SegmentId t = cursor.Next();
      if (t != kInvalidSegment) {
        if (Index(t) == s || in_deg[Index(t)] >= T || has_arc(s, t)) {
          continue;
        }
        add_arc(s, t);
        continue;
      }
      {
        // Cursor exhausted the whole map: global scan by id.
        for (std::size_t h = 0; h < count && out_deg[s] < T; ++h) {
          const SegmentId t2{static_cast<std::uint32_t>(h)};
          if (h == s || in_deg[h] >= T || has_arc(s, t2)) continue;
          add_arc(s, t2);
        }
        // Exchange repair: every remaining spare head is s itself or
        // already a target of s. Rewire some arc (u -> v) with v fresh for
        // s onto a spare head t*, freeing v's in-slot for s:
        //   u -> v  becomes  u -> t*,   plus new  s -> v.
        // All degree constraints are preserved by construction.
        while (out_deg[s] < T) {
          std::size_t spare_head = count;
          for (std::size_t h = 0; h < count; ++h) {
            if (in_deg[h] < T) {
              spare_head = h;
              break;
            }
          }
          bool repaired = false;
          for (std::size_t u = 0; u < count && !repaired; ++u) {
            if (u == spare_head) continue;
            if (has_arc(u, SegmentId{static_cast<std::uint32_t>(
                               spare_head)})) {
              continue;
            }
            for (auto& v : targets[u]) {
              if (Index(v) == s || Index(v) == spare_head) continue;
              if (has_arc(s, v)) continue;
              const SegmentId freed = v;
              v = SegmentId{static_cast<std::uint32_t>(spare_head)};
              arc_set.erase(arc_key(u, freed));
              arc_set.insert(arc_key(u, v));
              ++in_deg[spare_head];
              --in_deg[Index(freed)];
              add_arc(s, freed);
              repaired = true;
              break;
            }
          }
          if (!repaired) {
            return Status::Internal(
                "RPLE pre-assignment: could not regularize link digraph");
          }
        }
        break;
      }
    }
  }

  // ---- Step 2: arc coloring (Kempe chains on the bipartite tail/head
  // incidence) ------------------------------------------------------------
  TransitionTables tables;
  tables.t_ = T;
  tables.ft_.assign(count * T, kInvalidSegment);
  tables.bt_.assign(count * T, kInvalidSegment);
  auto ft = [&](std::size_t s, std::uint32_t c) -> SegmentId& {
    return tables.ft_[s * T + c];
  };
  auto bt = [&](std::size_t t, std::uint32_t c) -> SegmentId& {
    return tables.bt_[t * T + c];
  };
  auto free_ft_color = [&](std::size_t s) -> std::uint32_t {
    for (std::uint32_t c = 0; c < T; ++c) {
      if (ft(s, c) == kInvalidSegment) return c;
    }
    return T;
  };
  auto free_bt_color = [&](std::size_t t) -> std::uint32_t {
    for (std::uint32_t c = 0; c < T; ++c) {
      if (bt(t, c) == kInvalidSegment) return c;
    }
    return T;
  };

  for (std::size_t s = 0; s < count; ++s) {
    for (const SegmentId t : targets[s]) {
      // Common free color?
      std::uint32_t common = T;
      for (std::uint32_t c = 0; c < T; ++c) {
        if (ft(s, c) == kInvalidSegment &&
            bt(Index(t), c) == kInvalidSegment) {
          common = c;
          break;
        }
      }
      if (common < T) {
        ft(s, common) = t;
        bt(Index(t), common) = SegmentId{static_cast<std::uint32_t>(s)};
        continue;
      }
      // Kempe chain: a free at tail s, b free at head t; swap colors a/b
      // along the maximal alternating path starting at t with color a.
      const std::uint32_t a = free_ft_color(s);
      const std::uint32_t b = free_bt_color(Index(t));
      if (a >= T || b >= T) {
        return Status::Internal("RPLE coloring: no free color (degree bug)");
      }
      struct PathEdge {
        std::uint32_t tail;
        std::uint32_t head;
        std::uint32_t color;
      };
      std::vector<PathEdge> path;
      bool head_side = true;
      std::uint32_t node = Index(t);
      std::uint32_t color = a;
      while (true) {
        if (head_side) {
          const SegmentId tail = bt(node, color);
          if (tail == kInvalidSegment) break;
          path.push_back({Index(tail), node, color});
          node = Index(tail);
        } else {
          const SegmentId head = ft(node, color);
          if (head == kInvalidSegment) break;
          path.push_back({node, Index(head), color});
          node = Index(head);
        }
        head_side = !head_side;
        color = (color == a) ? b : a;
      }
      for (const auto& edge : path) {  // clear, then re-place swapped
        ft(edge.tail, edge.color) = kInvalidSegment;
        bt(edge.head, edge.color) = kInvalidSegment;
      }
      for (const auto& edge : path) {
        const std::uint32_t swapped = (edge.color == a) ? b : a;
        ft(edge.tail, swapped) = SegmentId{edge.head};
        bt(edge.head, swapped) = SegmentId{edge.tail};
      }
      ft(s, a) = t;
      bt(Index(t), a) = SegmentId{static_cast<std::uint32_t>(s)};
    }
  }

  RCLOAK_RETURN_IF_ERROR(tables.ValidatePairing());
  return tables;
}

GreedyPreassignResult PreassignGreedy(const RoadNetwork& net,
                                      const SpatialIndex& index,
                                      std::uint32_t T,
                                      std::size_t neighbor_list_cap) {
  const std::size_t count = net.segment_count();
  GreedyPreassignResult result;
  result.T = T;
  result.ft.assign(count * T, kInvalidSegment);
  result.bt.assign(count * T, kInvalidSegment);
  result.total_slots = count * T;
  if (neighbor_list_cap == 0) {
    neighbor_list_cap = 8 * static_cast<std::size_t>(T);
  }

  // Algorithm 1: for each segment, walk its neighbour list; for each
  // potential target sp take the first position empty in both FT[s] and
  // BT[sp]; skip the pair when the intersection is empty (this is exactly
  // the hole-forming case).
  for (std::size_t s = 0; s < count; ++s) {
    const auto nl = LinkCandidates(
        net, index, SegmentId{static_cast<std::uint32_t>(s)},
        neighbor_list_cap);
    for (const SegmentId sp : nl) {
      std::uint32_t sel = T;
      for (std::uint32_t j = 0; j < T; ++j) {
        if (result.ft[s * T + j] == kInvalidSegment &&
            result.bt[Index(sp) * T + j] == kInvalidSegment) {
          sel = j;
          break;
        }
      }
      if (sel == T) continue;
      result.ft[s * T + sel] = sp;
      result.bt[Index(sp) * T + sel] = SegmentId{static_cast<std::uint32_t>(s)};
      result.filled_slots += 1;
    }
  }
  return result;
}

StatusOr<LevelRecord> RpleAnonymizeLevel(
    const TransitionTables& tables, const UserCounter& users,
    CloakRegion& region, SegmentId& walk_position,
    const crypto::AccessKey& key, const std::string& context,
    int level_index, const LevelRequirement& requirement,
    RpleStats* stats) {
  if (region.empty()) {
    return Status::FailedPrecondition("RPLE level expansion on empty region");
  }
  const crypto::KeyedPrng prng(key, LevelStreamContext(context, level_index));
  const crypto::KeyedPrng meta_prng(key,
                                    LevelMetaContext(context, level_index));
  const std::uint32_t T = tables.T();

  const std::vector<SegmentId> region_before = region.segments_by_id();
  const SegmentId position_before = walk_position;
  auto rollback = [&] {
    region = CloakRegion::FromSegments(region.network(), region_before);
    walk_position = position_before;
  };

  std::vector<bool> added_bits;
  std::uint64_t step = 0;
  const std::uint64_t max_steps = WalkBudget(requirement);
  while (!LevelSatisfied(region, users, requirement)) {
    if (step >= max_steps) {
      rollback();
      return Status::ResourceExhausted(
          "RPLE: walk budget exhausted before reaching (delta_k, delta_l)");
    }
    const SegmentId next =
        tables.Forward(walk_position,
                       static_cast<std::uint32_t>(prng.Draw(step) % T));
    const bool is_new = !region.Contains(next);
    if (is_new) {
      region.Insert(next);
    } else if (stats != nullptr) {
      ++stats->revisits;
    }
    added_bits.push_back(is_new);
    walk_position = next;
    ++step;
    if (stats != nullptr) ++stats->walk_steps;
    if (is_new && region.Bounds().Diagonal() > requirement.sigma_s) {
      rollback();
      return Status::ResourceExhausted(
          "RPLE: spatial tolerance sigma_s exceeded before reaching "
          "(delta_k, delta_l)");
    }
  }

  LevelRecord record;
  record.region_size = static_cast<std::uint32_t>(region.size());
  record.seal = SealRank(region, walk_position, prng);
  record.walk_len_blinded =
      static_cast<std::uint32_t>(step) ^
      static_cast<std::uint32_t>(prng.Prf("walklen"));
  record.step_bits_blinded = PackStepBits(added_bits, meta_prng);
  return record;
}

Status RpleDeanonymizeLevel(const TransitionTables& tables,
                            CloakRegion& region, const crypto::AccessKey& key,
                            const std::string& context, int level_index,
                            const LevelRecord& record) {
  if (region.size() != record.region_size) {
    return Status::FailedPrecondition(
        "RPLE de-anonymize: region size does not match level record");
  }
  const crypto::KeyedPrng prng(key, LevelStreamContext(context, level_index));
  const crypto::KeyedPrng meta_prng(key,
                                    LevelMetaContext(context, level_index));
  const std::uint32_t T = tables.T();

  const std::uint32_t walk_len =
      record.walk_len_blinded ^
      static_cast<std::uint32_t>(prng.Prf("walklen"));
  if (walk_len == 0) return Status::Ok();

  RCLOAK_ASSIGN_OR_RETURN(
      const Bytes bits,
      UnblindStepBits(record.step_bits_blinded, meta_prng, walk_len, "RPLE"));

  RCLOAK_ASSIGN_OR_RETURN(SegmentId walk,
                          OpenSeal(region, record.seal, prng));
  for (std::uint64_t j = walk_len; j-- > 0;) {
    if (StepBitAt(bits, j)) {
      if (!region.Contains(walk)) {
        return Status::DataLoss(
            "RPLE de-anonymize: walk erased a non-member segment (wrong key "
            "or corrupt artifact)");
      }
      region.Erase(walk);
    }
    walk = tables.Backward(walk,
                           static_cast<std::uint32_t>(prng.Draw(j) % T));
  }
  return Status::Ok();
}

}  // namespace rcloak::core
