#include "core/privacy_profile.h"

#include <string>

namespace rcloak::core {

PrivacyProfile PrivacyProfile::DefaultLadder(int num_levels, std::uint32_t k1,
                                             std::uint32_t l1, double sigma1) {
  std::vector<LevelRequirement> levels;
  levels.reserve(static_cast<std::size_t>(num_levels));
  std::uint32_t k = k1;
  std::uint32_t l = l1;
  double sigma = sigma1;
  for (int i = 0; i < num_levels; ++i) {
    levels.push_back({k, l, sigma});
    k *= 2;
    l += 2;
    sigma *= 1.5;
  }
  return PrivacyProfile(std::move(levels));
}

Status PrivacyProfile::Validate() const {
  if (levels_.empty()) {
    return Status::InvalidArgument("profile needs at least one level");
  }
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const auto& req = levels_[i];
    if (req.delta_k < 1) {
      return Status::InvalidArgument("level " + std::to_string(i + 1) +
                                     ": delta_k must be >= 1");
    }
    if (req.delta_l < 1) {
      return Status::InvalidArgument("level " + std::to_string(i + 1) +
                                     ": delta_l must be >= 1");
    }
    if (!(req.sigma_s > 0.0)) {
      return Status::InvalidArgument("level " + std::to_string(i + 1) +
                                     ": sigma_s must be positive");
    }
    if (i > 0) {
      const auto& prev = levels_[i - 1];
      if (req.delta_k < prev.delta_k || req.delta_l < prev.delta_l ||
          req.sigma_s < prev.sigma_s) {
        return Status::InvalidArgument(
            "level " + std::to_string(i + 1) +
            ": requirements must be non-decreasing across levels");
      }
    }
  }
  return Status::Ok();
}

}  // namespace rcloak::core
