// Spatio-temporal cloaking: the temporal-tolerance dimension.
//
// The paper's Algorithm 1 takes a temporal key Kt and the user profile
// carries a temporal tolerance (σt) alongside the spatial one — the classic
// Gruteser/Grunwald axis: if not enough users are around *now*, the
// anonymizer may defer the release up to σt and count users observed during
// the deferral window.
//
// Correct counting: location k-anonymity needs >= δk *distinct* users in
// the region over the window. Summing per-tick snapshots would double-count
// cars that cross several segments. WindowOccupancy therefore credits each
// car to the segment of its *first* appearance in the window: per-segment
// counts then sum to distinct cars, and any region's sum lower-bounds the
// true distinct-user count — the k-anonymity guarantee stays sound
// (conservative). See DESIGN.md §3.
#pragma once

#include <cstdint>
#include <vector>

#include "core/reversecloak.h"
#include "mobility/trace.h"

namespace rcloak::core {

// Time-indexed trace store for window queries.
class TraceTimeline {
 public:
  // Records must be time-ordered (TraceSimulator emits them ordered).
  explicit TraceTimeline(std::vector<mobility::TraceRecord> records,
                         std::size_t segment_count);

  // Occupancy over [t_begin, t_end]: each distinct car counted once, on the
  // segment of its first appearance within the window. Suitable for
  // population overviews; for the k-anonymity check use WindowCounter,
  // which credits cars *passing through* a region later in the window.
  mobility::OccupancySnapshot WindowOccupancy(double t_begin,
                                              double t_end) const;

  // All (segment, car) presences within the window, deduplicated:
  // per-segment sorted lists of distinct car ids.
  std::vector<std::vector<std::uint32_t>> WindowPresence(double t_begin,
                                                         double t_end) const;

  double earliest() const noexcept { return earliest_; }
  double latest() const noexcept { return latest_; }
  std::size_t record_count() const noexcept { return records_.size(); }
  std::size_t segment_count() const noexcept { return segment_count_; }

 private:
  std::vector<mobility::TraceRecord> records_;  // time-ordered
  std::size_t segment_count_;
  double earliest_ = 0.0;
  double latest_ = 0.0;
};

// Region-level distinct-user counter over a trace window: a car counts
// toward a region if it was observed on ANY region segment at ANY time in
// the window — the sound spatio-temporal k-anonymity semantics (cars
// traversing several region segments are counted once).
class WindowCounter final : public UserCounter {
 public:
  WindowCounter(const TraceTimeline& timeline, double t_begin, double t_end)
      : presence_(timeline.WindowPresence(t_begin, t_end)) {}

  std::uint64_t Count(const CloakRegion& region) const override;

 private:
  std::vector<std::vector<std::uint32_t>> presence_;
};

struct TemporalCloakResult {
  AnonymizeResult spatial;   // the artifact, as from Anonymizer::Anonymize
  double deferral_s = 0.0;   // how long the release was delayed
  std::uint32_t attempts = 0;
};

// Tries to anonymize at request_time; on RESOURCE_EXHAUSTED (not enough
// users within σs), extends the observation window by `step_s` and retries,
// up to sigma_t seconds of deferral. Other errors propagate immediately.
StatusOr<TemporalCloakResult> TemporalCloak(
    Anonymizer& anonymizer, const TraceTimeline& timeline,
    const AnonymizeRequest& request, const crypto::KeyChain& keys,
    double request_time, double sigma_t, double step_s);

}  // namespace rcloak::core
