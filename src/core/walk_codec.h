// Shared scaffolding of the keyed-walk backends (RGE, RPLE, Grid): the
// per-level PRNG context strings, the satisfaction predicate, the walk
// budget, and the key-blinded "step added something" bit codec.
//
// This is wire-format-defining code — the context strings bind the PRNG
// streams and the bit packing (pad to a 16-byte multiple, blind with the
// meta keystream) is replayed byte-exactly by the de-anonymizer — so it
// lives in exactly one place. The golden artifact SHA pins would catch any
// drift, but sharing makes drift impossible by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cloak_region.h"
#include "core/privacy_profile.h"
#include "core/user_counter.h"
#include "crypto/keyed_prng.h"
#include "util/bytes.h"
#include "util/status.h"

namespace rcloak::core {

// Per-level PRNG stream contexts: "<request>/L<i>" for the walk draws and
// seals, "<request>/L<i>/meta" for the step-bit blinding keystream.
inline std::string LevelStreamContext(const std::string& context,
                                      int level_index) {
  return context + "/L" + std::to_string(level_index);
}
inline std::string LevelMetaContext(const std::string& context,
                                    int level_index) {
  return LevelStreamContext(context, level_index) + "/meta";
}

// The level-expansion stop condition shared by every backend: enough
// segments (l-diversity) and enough users (k-anonymity). sigma_s is
// checked separately, per inserted step.
inline bool LevelSatisfied(const CloakRegion& region, const UserCounter& users,
                           const LevelRequirement& requirement) {
  return region.size() >= requirement.delta_l &&
         users.Count(region) >= requirement.delta_k;
}

// Walk-step budget before a level expansion gives up (unreachable
// requirements must fail, not spin).
inline std::uint64_t WalkBudget(const LevelRequirement& requirement) {
  return 4096 + 512ULL * (requirement.delta_k + requirement.delta_l);
}

// Packs the per-step "added something new" bits: pad to a 16-byte multiple
// (blurs the exact walk length without a key), then blind every byte with
// the meta keystream.
Bytes PackStepBits(const std::vector<bool>& added_bits,
                   const crypto::KeyedPrng& meta_prng);

// Inverse of PackStepBits: checks the blinded payload can hold `walk_len`
// bits (the capacity check doubles as a wrong-key detector — a bad key
// decodes walk_len to a near-uniform 32-bit value that cannot fit) and
// returns the unblinded bytes. `what` names the backend for the error.
StatusOr<Bytes> UnblindStepBits(const Bytes& step_bits_blinded,
                                const crypto::KeyedPrng& meta_prng,
                                std::uint32_t walk_len, const char* what);

inline bool StepBitAt(const Bytes& bits, std::uint64_t j) {
  return ((bits[static_cast<std::size_t>(j / 8)] >> (j % 8)) & 1u) != 0;
}

}  // namespace rcloak::core
