#include "core/grid_cloak.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/walk_codec.h"

namespace rcloak::core {

namespace {

constexpr std::uint64_t kMask32 = 0xFFFFFFFFull;

// Canonical walk offsets: a clockwise ring walk starting due north, ring 1
// first (N, NE, E, SE, S, SW, W, NW), then ring 2, ... A pure function of
// T, so both protocol sides derive identical tables.
std::vector<std::pair<int, int>> WalkOffsets(std::uint32_t T) {
  std::vector<std::pair<int, int>> offsets;
  offsets.reserve(T);
  for (int r = 1; offsets.size() < T; ++r) {
    for (int dx = 0; dx <= r && offsets.size() < T; ++dx) {
      offsets.emplace_back(dx, -r);
    }
    for (int dy = -r + 1; dy <= r && offsets.size() < T; ++dy) {
      offsets.emplace_back(r, dy);
    }
    for (int dx = r - 1; dx >= -r && offsets.size() < T; --dx) {
      offsets.emplace_back(dx, r);
    }
    for (int dy = r - 1; dy >= -r && offsets.size() < T; --dy) {
      offsets.emplace_back(-r, dy);
    }
    for (int dx = -r + 1; dx <= -1 && offsets.size() < T; ++dx) {
      offsets.emplace_back(dx, -r);
    }
  }
  return offsets;
}

std::uint32_t TorusCoord(int v, std::uint32_t side) noexcept {
  const int s = static_cast<int>(side);
  return static_cast<std::uint32_t>(((v % s) + s) % s);
}

std::uint32_t AxisCell(double v, double lo, double extent,
                       std::uint32_t side) noexcept {
  if (side <= 1 || extent <= 0.0) return 0;
  const double t = (v - lo) / extent;
  const auto cell = static_cast<std::int64_t>(t * static_cast<double>(side));
  if (cell < 0) return 0;
  if (cell >= static_cast<std::int64_t>(side)) return side - 1;
  return static_cast<std::uint32_t>(cell);
}

}  // namespace

std::uint32_t HilbertRankOfCell(std::uint32_t side, std::uint32_t x,
                                std::uint32_t y) noexcept {
  std::uint32_t rank = 0;
  for (std::uint32_t s = side / 2; s > 0; s /= 2) {
    const std::uint32_t rx = (x & s) ? 1u : 0u;
    const std::uint32_t ry = (y & s) ? 1u : 0u;
    rank += s * s * ((3u * rx) ^ ry);
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return rank;
}

void HilbertCellOf(std::uint32_t side, std::uint32_t rank, std::uint32_t* x,
                   std::uint32_t* y) noexcept {
  std::uint32_t cx = 0, cy = 0;
  std::uint32_t t = rank;
  for (std::uint32_t s = 1; s < side; s *= 2) {
    const std::uint32_t rx = 1u & (t / 2);
    const std::uint32_t ry = 1u & (t ^ rx);
    if (ry == 0) {
      if (rx == 1) {
        cx = s - 1 - cx;
        cy = s - 1 - cy;
      }
      std::swap(cx, cy);
    }
    cx += s * rx;
    cy += s * ry;
    t /= 4;
  }
  *x = cx;
  *y = cy;
}

Status GridTransitionTables::ValidatePairing() const {
  for (std::uint32_t c = 0; c < num_cells_; ++c) {
    for (std::uint32_t j = 0; j < t_; ++j) {
      if (Backward(Forward(c, j), j) != c) {
        return Status::Internal("grid FT/BT pairing violated at cell " +
                                std::to_string(c) + " slot " +
                                std::to_string(j));
      }
    }
  }
  return Status::Ok();
}

std::uint32_t GridContext::DefaultSide(
    const roadnet::RoadNetwork& net) noexcept {
  const double target = std::sqrt(
      static_cast<double>(std::max<std::size_t>(1, net.segment_count())) /
      8.0);
  std::uint32_t side = 1;
  while (side < 1024 && static_cast<double>(side) < target) side <<= 1;
  return side;
}

StatusOr<std::unique_ptr<const GridContext>> GridContext::Build(
    const roadnet::RoadNetwork& net, std::uint32_t side) {
  if (net.segment_count() == 0) {
    return Status::InvalidArgument("grid cloak: network has no segments");
  }
  if (side == 0) side = DefaultSide(net);
  if ((side & (side - 1)) != 0 || side > 1024) {
    return Status::InvalidArgument(
        "grid cloak: side must be a power of two <= 1024");
  }
  std::unique_ptr<GridContext> grid(new GridContext());
  grid->side_ = side;
  const std::uint32_t num_cells = side * side;
  const geo::BoundingBox bounds = net.bounds();
  const double width = bounds.width();
  const double height = bounds.height();

  const std::size_t count = net.segment_count();
  grid->cell_of_segment_.resize(count);
  std::vector<std::uint32_t> per_cell(num_cells, 0);
  for (std::size_t i = 0; i < count; ++i) {
    const geo::Point mid =
        net.SegmentMidpoint(SegmentId{static_cast<std::uint32_t>(i)});
    const std::uint32_t x = AxisCell(mid.x, bounds.min_x, width, side);
    const std::uint32_t y = AxisCell(mid.y, bounds.min_y, height, side);
    const std::uint32_t cell = y * side + x;
    grid->cell_of_segment_[i] = cell;
    ++per_cell[cell];
  }

  // CSR fill; within-cell order is ascending id because segments are
  // scanned in id order.
  grid->cell_offsets_.assign(num_cells + 1, 0);
  for (std::uint32_t c = 0; c < num_cells; ++c) {
    grid->cell_offsets_[c + 1] = grid->cell_offsets_[c] + per_cell[c];
    if (per_cell[c] > 0) ++grid->occupied_cells_;
  }
  grid->cell_segments_.resize(count, SegmentId{0});
  std::vector<std::uint32_t> cursor(grid->cell_offsets_.begin(),
                                    grid->cell_offsets_.end() - 1);
  for (std::size_t i = 0; i < count; ++i) {
    grid->cell_segments_[cursor[grid->cell_of_segment_[i]]++] =
        SegmentId{static_cast<std::uint32_t>(i)};
  }

  grid->hilbert_of_cell_.resize(num_cells);
  grid->cell_of_hilbert_.resize(num_cells);
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      const std::uint32_t rank = HilbertRankOfCell(side, x, y);
      grid->hilbert_of_cell_[y * side + x] = rank;
      grid->cell_of_hilbert_[rank] = y * side + x;
    }
  }
  return std::unique_ptr<const GridContext>(std::move(grid));
}

StatusOr<const GridTransitionTables*> GridContext::TablesFor(
    std::uint32_t T) const {
  if (T < 2 || T > 64) {
    return Status::InvalidArgument(
        "grid cloak: walk fan-out T must be in [2, 64]");
  }
  std::lock_guard<std::mutex> lock(tables_mutex_);
  for (const auto& entry : tables_by_T_) {
    if (entry.first == T) return entry.second.get();
  }
  auto tables = std::make_unique<GridTransitionTables>();
  tables->t_ = T;
  tables->num_cells_ = num_cells();
  tables->ft_.resize(static_cast<std::size_t>(tables->num_cells_) * T);
  tables->bt_.resize(static_cast<std::size_t>(tables->num_cells_) * T);
  const auto offsets = WalkOffsets(T);
  for (std::uint32_t c = 0; c < tables->num_cells_; ++c) {
    const int x = static_cast<int>(c % side_);
    const int y = static_cast<int>(c / side_);
    for (std::uint32_t j = 0; j < T; ++j) {
      const auto [dx, dy] = offsets[j];
      tables->ft_[static_cast<std::size_t>(c) * T + j] =
          TorusCoord(y + dy, side_) * side_ + TorusCoord(x + dx, side_);
      tables->bt_[static_cast<std::size_t>(c) * T + j] =
          TorusCoord(y - dy, side_) * side_ + TorusCoord(x - dx, side_);
    }
  }
  ++table_builds_;
  const GridTransitionTables* result = tables.get();
  tables_by_T_.emplace_back(T, std::move(tables));
  return result;
}

std::size_t GridContext::table_builds() const {
  std::lock_guard<std::mutex> lock(tables_mutex_);
  return table_builds_;
}

StatusOr<LevelRecord> GridAnonymizeLevel(
    const GridContext& grid, const GridTransitionTables& tables,
    const UserCounter& users, CloakRegion& region, std::uint32_t& walk_cell,
    const crypto::AccessKey& key, const std::string& context,
    int level_index, const LevelRequirement& requirement, GridStats* stats) {
  if (region.empty()) {
    return Status::FailedPrecondition("grid level expansion on empty region");
  }
  const crypto::KeyedPrng prng(key, LevelStreamContext(context, level_index));
  const crypto::KeyedPrng meta_prng(key,
                                    LevelMetaContext(context, level_index));
  const std::uint32_t T = tables.T();

  const std::vector<SegmentId> region_before = region.segments_by_id();
  const std::uint32_t walk_cell_before = walk_cell;
  auto rollback = [&] {
    region = CloakRegion::FromSegments(region.network(), region_before);
    walk_cell = walk_cell_before;
  };

  // Level 1 always completes the origin's cell first (even when {origin}
  // already satisfies the requirement): the reduction peels whole cells,
  // so every published level must be a union of cells.
  std::uint64_t origin_rank_in_cell = 0;
  if (level_index == 1) {
    if (region.size() != 1) {
      return Status::FailedPrecondition(
          "grid level 1 expects the singleton origin region");
    }
    const SegmentId origin = region.segments_by_id().front();
    walk_cell = grid.CellOf(origin);
    const auto cell_segments = grid.CellSegments(walk_cell);
    for (std::size_t i = 0; i < cell_segments.size(); ++i) {
      if (cell_segments[i] == origin) {
        origin_rank_in_cell = i;
      } else {
        region.Insert(cell_segments[i]);
      }
    }
    if (region.Bounds().Diagonal() > requirement.sigma_s) {
      rollback();
      return Status::ResourceExhausted(
          "grid: a single cell already exceeds sigma_s (grid too coarse "
          "for this spatial tolerance)");
    }
  }

  std::vector<bool> added_bits;
  std::uint64_t step = 0;
  const std::uint64_t max_steps = WalkBudget(requirement);
  while (!LevelSatisfied(region, users, requirement)) {
    if (step >= max_steps) {
      rollback();
      return Status::ResourceExhausted(
          "grid: walk budget exhausted before reaching (delta_k, delta_l)");
    }
    const std::uint32_t next = tables.Forward(
        walk_cell, static_cast<std::uint32_t>(prng.Draw(step) % T));
    // A non-empty cell is covered iff its first segment is (the walk pulls
    // cells wholesale); empty cells are walked through without adding.
    const auto next_segments = grid.CellSegments(next);
    const bool is_new =
        !next_segments.empty() && !region.Contains(next_segments.front());
    if (is_new) {
      for (const SegmentId sid : next_segments) {
        region.Insert(sid);
      }
      if (stats != nullptr) ++stats->cells_added;
    } else if (stats != nullptr) {
      ++stats->revisits;
    }
    added_bits.push_back(is_new);
    walk_cell = next;
    ++step;
    if (stats != nullptr) ++stats->walk_steps;
    if (is_new && region.Bounds().Diagonal() > requirement.sigma_s) {
      rollback();
      return Status::ResourceExhausted(
          "grid: spatial tolerance sigma_s exceeded before reaching "
          "(delta_k, delta_l)");
    }
  }

  LevelRecord record;
  record.region_size = static_cast<std::uint32_t>(region.size());
  // Seal layout (all mod 2^32, so the published values are uniform):
  //   low 32 bits  — blinded Hilbert rank of the walk-end cell;
  //   high 32 bits — level 1: blinded rank of the origin within its cell's
  //                  id-sorted segment list; levels >= 2: keyed padding.
  const std::uint64_t low =
      (grid.HilbertRank(walk_cell) + prng.Prf("seal")) & kMask32;
  const std::uint64_t high =
      level_index == 1 ? (origin_rank_in_cell + prng.Prf("origin")) & kMask32
                       : prng.Prf("origin-pad") & kMask32;
  record.seal = (high << 32) | low;
  record.walk_len_blinded =
      static_cast<std::uint32_t>(step) ^
      static_cast<std::uint32_t>(prng.Prf("walklen"));
  record.step_bits_blinded = PackStepBits(added_bits, meta_prng);
  return record;
}

Status GridDeanonymizeLevel(const GridContext& grid,
                            const GridTransitionTables& tables,
                            CloakRegion& region, const crypto::AccessKey& key,
                            const std::string& context, int level_index,
                            const LevelRecord& record) {
  if (region.size() != record.region_size) {
    return Status::FailedPrecondition(
        "grid de-anonymize: region size does not match level record");
  }
  const crypto::KeyedPrng prng(key, LevelStreamContext(context, level_index));
  const crypto::KeyedPrng meta_prng(key,
                                    LevelMetaContext(context, level_index));
  const std::uint32_t T = tables.T();

  // Open the walk-end cell from the seal's low half; a wrong key decodes
  // to a near-uniform 32-bit value that exceeds the cell count.
  const std::uint64_t cell_rank =
      ((record.seal & kMask32) - prng.Prf("seal")) & kMask32;
  if (cell_rank >= grid.num_cells()) {
    return Status::DataLoss(
        "grid de-anonymize: seal opens outside the grid (wrong key or "
        "corrupt artifact)");
  }
  std::uint32_t walk =
      grid.CellOfHilbertRank(static_cast<std::uint32_t>(cell_rank));

  const std::uint32_t walk_len =
      record.walk_len_blinded ^
      static_cast<std::uint32_t>(prng.Prf("walklen"));
  if (walk_len > 0) {
    RCLOAK_ASSIGN_OR_RETURN(
        const Bytes bits, UnblindStepBits(record.step_bits_blinded, meta_prng,
                                          walk_len, "grid"));
    for (std::uint64_t j = walk_len; j-- > 0;) {
      if (StepBitAt(bits, j)) {
        const auto cell_segments = grid.CellSegments(walk);
        if (cell_segments.empty()) {
          return Status::DataLoss(
              "grid de-anonymize: walk removed an empty cell (wrong key or "
              "corrupt artifact)");
        }
        for (const SegmentId sid : cell_segments) {
          if (!region.Contains(sid)) {
            return Status::DataLoss(
                "grid de-anonymize: walk erased a non-member segment "
                "(wrong key or corrupt artifact)");
          }
          region.Erase(sid);
        }
      }
      walk = tables.Backward(walk,
                             static_cast<std::uint32_t>(prng.Draw(j) % T));
    }
  }

  if (level_index == 1) {
    // The replay ended on the level's start cell == the origin's cell; the
    // remaining region must be exactly that cell. Peel it down to the
    // sealed origin segment.
    const auto cell_segments = grid.CellSegments(walk);
    if (cell_segments.empty() || region.size() != cell_segments.size()) {
      return Status::DataLoss(
          "grid de-anonymize: residue is not the origin cell (wrong key or "
          "corrupt artifact)");
    }
    for (const SegmentId sid : cell_segments) {
      if (!region.Contains(sid)) {
        return Status::DataLoss(
            "grid de-anonymize: residue is not the origin cell (wrong key "
            "or corrupt artifact)");
      }
    }
    const std::uint64_t origin_rank =
        ((record.seal >> 32) - prng.Prf("origin")) & kMask32;
    if (origin_rank >= cell_segments.size()) {
      return Status::DataLoss(
          "grid de-anonymize: origin seal out of range (wrong key or "
          "corrupt artifact)");
    }
    const SegmentId origin =
        cell_segments[static_cast<std::size_t>(origin_rank)];
    for (const SegmentId sid : cell_segments) {
      if (sid != origin) region.Erase(sid);
    }
  }
  return Status::Ok();
}

}  // namespace rcloak::core
