#include "util/stats.h"

namespace rcloak {

double EntropyBits(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0) total += w;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double w : weights) {
    if (w <= 0) continue;
    const double p = w / total;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace rcloak
