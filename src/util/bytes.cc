#include "util/bytes.h"

namespace rcloak {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string ToHex(const Bytes& data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

std::optional<Bytes> FromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size() || i + 1 == hex.size(); i += 2) {
    if (i + 1 >= hex.size()) break;
    const int hi = HexValue(hex[i]);
    const int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

void PutVarint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::optional<std::uint64_t> GetVarint(const Bytes& in, std::size_t* offset) {
  std::uint64_t result = 0;
  int shift = 0;
  std::size_t pos = *offset;
  while (pos < in.size() && shift <= 63) {
    const std::uint8_t byte = in[pos++];
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *offset = pos;
      return result;
    }
    shift += 7;
  }
  return std::nullopt;
}

void PutU32le(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void PutU64le(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::optional<std::uint32_t> GetU32le(const Bytes& in, std::size_t* offset) {
  if (*offset + 4 > in.size()) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[*offset + i]) << (8 * i);
  }
  *offset += 4;
  return v;
}

std::optional<std::uint64_t> GetU64le(const Bytes& in, std::size_t* offset) {
  if (*offset + 8 > in.size()) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[*offset + i]) << (8 * i);
  }
  *offset += 8;
  return v;
}

}  // namespace rcloak
