// String interner and id-keyed open-addressed tables for the million-user
// session layer.
//
// The steady-state fleet update path must not pay a string hash, a string
// compare, or an allocation per position update. StringInterner maps each
// user-id string to a stable dense UserId handle exactly once (at the API
// boundary); afterwards shard selection, session lookup and commit all run
// on 32-bit handles. Interned bytes live in chunked arenas, so the
// string_view returned by NameOf stays valid across table growth and
// regardless of what happened to the caller's buffer.
//
// Generations (the cold-tier reclamation story): the arena is segmented
// into generations. Touch(id) moves a live name into the current
// generation (the handle never changes); RetireGenerationsBefore(g) frees
// every older generation and retires the names still stranded there. The
// session pool drives this at spill-file compaction: it touches every
// name that is resident or live in the spill file, then retires the rest,
// so churned users stop being unbounded arena growth. A handle stays
// stable for as long as its name survives retirement — an evicted-then-
// spilled user keeps its id and a restore resumes under the same handle.
// Retired handles are recycled for future interns, so a name that was
// neither resident nor spilled must be re-interned (fresh handle) if the
// user ever returns.
//
// IdMap is the companion table: open addressing (linear probing, power-of-
// two capacity, tombstoned erase) keyed by UserId, so a session lookup is
// one mix + a short probe over a flat array instead of an unordered_map
// node walk keyed by strings.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rcloak::util {

// Stable dense handle for an interned string (index into the interner's
// entry list). Value-comparable; kInvalid means "not interned".
struct UserId {
  static constexpr std::uint32_t kInvalidValue = 0xffffffffu;

  std::uint32_t value = kInvalidValue;

  bool valid() const noexcept { return value != kInvalidValue; }
  friend bool operator==(UserId a, UserId b) noexcept {
    return a.value == b.value;
  }
  friend bool operator!=(UserId a, UserId b) noexcept {
    return a.value != b.value;
  }
};

inline constexpr UserId kInvalidUserId{};

// splitmix64 finalizer: spreads dense ids across the table / shard space.
constexpr std::uint64_t MixId(std::uint32_t value) noexcept {
  std::uint64_t z = static_cast<std::uint64_t>(value) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// FNV-1a 64: the one string hash the boundary pays per request.
constexpr std::uint64_t HashBytes(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  // Get-or-create (exclusive lock on create, shared probe first so the
  // already-interned case taken by Track retries stays read-mostly). An
  // existing name is promoted into the current generation, so interning
  // is also a liveness signal.
  UserId Intern(std::string_view s);

  // Lookup only; kInvalidUserId when `s` was never interned (or its name
  // was retired). Shared lock — this is the per-update boundary hit. Does
  // NOT promote: resident sessions are kept alive by the pool's explicit
  // Touch pass, not by update traffic.
  UserId Find(std::string_view s) const;

  // The interned bytes for `id`. The view stays valid until the entry's
  // generation is retired (growth never moves stored bytes). Empty view
  // for an invalid, retired, or out-of-range id. Callers that may race a
  // retirement should use NameCopyOf.
  std::string_view NameOf(UserId id) const;

  // Copying variant: the copy is taken under the interner lock, so it is
  // safe even if a concurrent retirement frees the arena chunk.
  std::string NameCopyOf(UserId id) const;

  // Live (non-retired) entry count.
  std::size_t size() const;

  // ---- generational reclamation ----

  // Opens a fresh generation and returns its number. Names interned or
  // touched from now on land there.
  std::uint32_t BeginGeneration();

  // Moves a live name into the current generation (copying its bytes; the
  // handle is unchanged). Returns false for invalid/retired ids.
  bool Touch(UserId id);

  // Retires every generation older than `generation`: names still living
  // there lose their handles (recycled for future interns) and the arena
  // chunks are freed. Returns the number of names retired.
  std::size_t RetireGenerationsBefore(std::uint32_t generation);

  std::uint32_t generation() const;

  // Bytes of arena chunks currently allocated (the churned-name growth the
  // cold tier bounds).
  std::size_t arena_bytes() const;
  // arena_bytes plus table/entry bookkeeping — the interner's contribution
  // to the pool memory budget.
  std::size_t memory_bytes() const;

 private:
  struct Entry {
    const char* data = nullptr;  // nullptr = retired (handle recyclable)
    std::uint32_t length = 0;
    std::uint32_t generation = 0;
    std::uint64_t hash = 0;
  };

  // One generation's chunked bump arena.
  struct Generation {
    std::uint32_t number = 0;
    std::vector<std::unique_ptr<char[]>> chunks;
    std::size_t used = 0;   // bytes used in chunks.back()
    std::size_t bytes = 0;  // total bytes allocated across chunks
  };

  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;
  static constexpr std::size_t kArenaChunk = 1 << 16;

  // All require mutex_ held (shared suffices for FindLocked).
  UserId FindLocked(std::string_view s, std::uint64_t hash) const;
  const char* StoreLocked(std::string_view s);
  void GrowLocked(std::size_t min_entries);
  void RebuildSlotsLocked();

  mutable std::shared_mutex mutex_;
  std::vector<std::uint32_t> slots_;  // entry index or kEmptySlot
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> free_entries_;  // retired handles, reusable
  std::size_t live_count_ = 0;
  std::vector<Generation> generations_;  // ascending; back() is current
  std::size_t arena_bytes_ = 0;          // sum of Generation::bytes
  std::uint32_t current_generation_ = 0;
};

// Open-addressed id→value map (linear probing, tombstoned erase). Not
// internally synchronized — each session-pool shard owns one under its
// shard mutex. Values must be movable (growth relocates them).
template <typename Value>
class IdMap {
 public:
  Value* Find(UserId id) noexcept {
    const std::size_t slot = FindSlot(id);
    return slot == kNoSlot ? nullptr : &*slots_[slot].value;
  }
  const Value* Find(UserId id) const noexcept {
    const std::size_t slot = FindSlot(id);
    return slot == kNoSlot ? nullptr : &*slots_[slot].value;
  }

  // Inserts id→Value(args...) unless present; returns {value, inserted}.
  template <typename... Args>
  std::pair<Value*, bool> TryEmplace(UserId id, Args&&... args) {
    ReserveForOneMore();
    const std::uint64_t mask = slots_.size() - 1;
    std::size_t index = MixId(id.value) & mask;
    std::size_t first_tombstone = kNoSlot;
    for (;;) {
      Slot& slot = slots_[index];
      if (slot.key == kEmptyKey) {
        Slot& target =
            first_tombstone == kNoSlot ? slot : slots_[first_tombstone];
        if (first_tombstone != kNoSlot) --tombstones_;
        target.key = id.value;
        target.value.emplace(std::forward<Args>(args)...);
        ++size_;
        return {&*target.value, true};
      }
      if (slot.key == kTombstoneKey) {
        if (first_tombstone == kNoSlot) first_tombstone = index;
      } else if (slot.key == id.value) {
        return {&*slot.value, false};
      }
      index = (index + 1) & mask;
    }
  }

  bool Erase(UserId id) {
    const std::size_t slot = FindSlot(id);
    if (slot == kNoSlot) return false;
    slots_[slot].value.reset();
    slots_[slot].key = kTombstoneKey;
    --size_;
    ++tombstones_;
    return true;
  }

  // fn(UserId, Value&) over every live entry, in table order.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Slot& slot : slots_) {
      if (slot.value) fn(UserId{slot.key}, *slot.value);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.value) fn(UserId{slot.key}, *slot.value);
    }
  }

  // Erases every entry for which pred(UserId, Value&) returns true;
  // returns how many went.
  template <typename Pred>
  std::size_t EraseIf(Pred&& pred) {
    std::size_t erased = 0;
    for (Slot& slot : slots_) {
      if (slot.value && pred(UserId{slot.key}, *slot.value)) {
        slot.value.reset();
        slot.key = kTombstoneKey;
        --size_;
        ++tombstones_;
        ++erased;
      }
    }
    return erased;
  }

  // Clock-sweep support: visits up to `limit` live entries in slot order
  // starting at *cursor, wrapping at most once around the table, and
  // advances *cursor past the last slot examined. fn(UserId, Value&)
  // returning true erases the entry in place (tombstoned — safe mid-walk,
  // the table cannot grow during a sweep). Returns live entries visited.
  template <typename Fn>
  std::size_t SweepFrom(std::size_t* cursor, std::size_t limit, Fn&& fn) {
    if (slots_.empty() || size_ == 0 || limit == 0) return 0;
    const std::size_t capacity = slots_.size();
    std::size_t index = *cursor % capacity;
    std::size_t visited = 0;
    for (std::size_t step = 0; step < capacity && visited < limit; ++step) {
      Slot& slot = slots_[index];
      if (slot.value) {
        ++visited;
        if (fn(UserId{slot.key}, *slot.value)) {
          slot.value.reset();
          slot.key = kTombstoneKey;
          --size_;
          ++tombstones_;
        }
      }
      index = (index + 1) % capacity;
    }
    *cursor = index;
    return visited;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  // Table overhead (slot array only; Value-owned heap is the caller's to
  // account). Used by the session pool's memory-budget bookkeeping.
  std::size_t memory_bytes() const noexcept {
    return slots_.capacity() * sizeof(Slot);
  }

 private:
  // Key sentinels; real UserId values are dense and never reach them.
  static constexpr std::uint32_t kEmptyKey = 0xffffffffu;
  static constexpr std::uint32_t kTombstoneKey = 0xfffffffeu;
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  struct Slot {
    std::uint32_t key = kEmptyKey;
    std::optional<Value> value;
  };

  std::size_t FindSlot(UserId id) const noexcept {
    if (slots_.empty() || !id.valid()) return kNoSlot;
    const std::uint64_t mask = slots_.size() - 1;
    std::size_t index = MixId(id.value) & mask;
    for (;;) {
      const Slot& slot = slots_[index];
      if (slot.key == kEmptyKey) return kNoSlot;
      if (slot.key == id.value) return index;
      index = (index + 1) & mask;
    }
  }

  void ReserveForOneMore() {
    if (slots_.empty()) {
      slots_.resize(16);
      return;
    }
    // Rehash at 7/8 occupancy counting tombstones, so probes stay short
    // and an erase-heavy workload reclaims its dead slots.
    if ((size_ + tombstones_ + 1) * 8 < slots_.size() * 7) return;
    // Smallest power-of-two capacity keeping live entries under 7/8; a
    // tombstone-dominated table rehashes in place and reclaims them.
    std::size_t new_capacity = slots_.size();
    while ((size_ + 1) * 8 >= new_capacity * 7) new_capacity *= 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(new_capacity);
    tombstones_ = 0;
    const std::uint64_t mask = slots_.size() - 1;
    for (Slot& slot : old) {
      if (!slot.value) continue;
      std::size_t index = MixId(slot.key) & mask;
      while (slots_[index].key != kEmptyKey) index = (index + 1) & mask;
      slots_[index].key = slot.key;
      slots_[index].value = std::move(slot.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace rcloak::util
