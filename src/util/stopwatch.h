// Monotonic wall-clock stopwatch used by the experiment harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace rcloak {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void Restart() noexcept { start_ = Clock::now(); }

  double ElapsedSeconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const noexcept { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const noexcept { return ElapsedSeconds() * 1e6; }
  std::uint64_t ElapsedNanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rcloak
