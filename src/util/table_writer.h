// CSV / aligned-Markdown table emission for the benchmark harness. Every
// experiment binary prints one table through this class so the output format
// is uniform across E1..E14.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rcloak {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  // Convenience: accepts already-formatted cells.
  void AddRow(std::vector<std::string> cells);

  // Renders "| a | b |" Markdown with aligned columns.
  void PrintMarkdown(std::ostream& os) const;
  // Renders RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void PrintCsv(std::ostream& os) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

  // Formatting helpers used by the bench binaries.
  static std::string Fixed(double v, int digits);
  static std::string Int(long long v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rcloak
