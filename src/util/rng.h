// Deterministic, non-cryptographic RNGs for *simulation* (map generation,
// car spawning, workload sweeps). These are intentionally separate from
// crypto::KeyedPrng, which drives the reversible cloaking transitions: the
// simulation RNG needs speed and reproducibility, not unpredictability.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>

namespace rcloak {

// SplitMix64: used to seed other generators and for cheap hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t Next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** 1.0 (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  std::uint64_t Next() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Unbiased integer in [0, bound) via Lemire-style rejection.
  std::uint64_t NextBounded(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
      const std::uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) noexcept {
    return lo + (hi - lo) * NextDouble();
  }

  // Standard normal via Marsaglia polar method (cached spare).
  double NextGaussian() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = NextDouble(-1.0, 1.0);
      v = NextDouble(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
  }

  bool NextBool(double p_true) noexcept { return NextDouble() < p_true; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace rcloak
