// Lightweight status / expected types used across the ReverseCloak libraries.
//
// The library avoids exceptions on hot paths (cloaking transitions run in
// tight loops); recoverable conditions are reported through Status /
// StatusOr so that callers must inspect them, per I.10 in the C++ Core
// Guidelines ("never ignore an error").
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace rcloak {

// Error taxonomy for the whole system. Keep values stable: they appear in
// serialized experiment logs.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kResourceExhausted = 5,   // e.g. spatial tolerance exceeded
  kDataLoss = 6,            // corrupt serialized artifact
  kInternal = 7,
  kUnimplemented = 8,
  kPermissionDenied = 9,    // authenticated principal lacks ownership
};

std::string_view ErrorCodeName(ErrorCode code) noexcept;

// Value-semantic status object; cheap to copy in the OK case.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(ErrorCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(ErrorCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(ErrorCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(ErrorCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(ErrorCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(ErrorCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(ErrorCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(ErrorCode::kUnimplemented, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(ErrorCode::kPermissionDenied, std::move(msg));
  }

  bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  // "code: message" rendering for logs and test failure output.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

// Minimal expected<T, Status>. Intentionally small: only what the codebase
// needs (construction from value or error, checked access).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT implicit
    assert(!std::get<Status>(rep_).ok() &&
           "StatusOr constructed from OK status without a value");
  }
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT implicit

  bool ok() const noexcept { return std::holds_alternative<T>(rep_); }

  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok() && "value() on errored StatusOr");
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok() && "value() on errored StatusOr");
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok() && "value() on errored StatusOr");
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

// Propagation helpers, used pervasively in the implementation files.
#define RCLOAK_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::rcloak::Status rcloak_status_ = (expr);          \
    if (!rcloak_status_.ok()) return rcloak_status_;   \
  } while (false)

// Two-level concat so __LINE__ expands: several assignments may share one
// scope without the temporaries colliding.
#define RCLOAK_SOR_CONCAT_(a, b) a##b
#define RCLOAK_SOR_CONCAT(a, b) RCLOAK_SOR_CONCAT_(a, b)
#define RCLOAK_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)   \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()
#define RCLOAK_ASSIGN_OR_RETURN(lhs, expr)             \
  RCLOAK_ASSIGN_OR_RETURN_IMPL(                        \
      RCLOAK_SOR_CONCAT(rcloak_sor_, __LINE__), lhs, expr)

}  // namespace rcloak
