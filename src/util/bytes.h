// Byte-buffer helpers: hex codecs and LEB128-style varint encoding used by
// the cloaked-artifact codec and the key files.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rcloak {

using Bytes = std::vector<std::uint8_t>;

std::string ToHex(const Bytes& data);
std::optional<Bytes> FromHex(std::string_view hex);

// Unsigned LEB128.
void PutVarint(Bytes& out, std::uint64_t v);
// Reads a varint at *offset; advances *offset. Returns nullopt on truncation
// or on encodings longer than 10 bytes.
std::optional<std::uint64_t> GetVarint(const Bytes& in, std::size_t* offset);

// Fixed-width little-endian helpers.
void PutU32le(Bytes& out, std::uint32_t v);
void PutU64le(Bytes& out, std::uint64_t v);
std::optional<std::uint32_t> GetU32le(const Bytes& in, std::size_t* offset);
std::optional<std::uint64_t> GetU64le(const Bytes& in, std::size_t* offset);

}  // namespace rcloak
