// Streaming statistics accumulators and percentile helpers for the
// experiment harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace rcloak {

// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void Add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  void Merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    const double new_mean =
        mean_ + delta * static_cast<double>(other.n_) / total;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ = new_mean;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Sample store for percentile queries; O(n log n) on demand.
class Samples {
 public:
  void Add(double x) { data_.push_back(x); }
  std::size_t count() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  double Mean() const noexcept {
    if (data_.empty()) return 0.0;
    double s = 0;
    for (double x : data_) s += x;
    return s / static_cast<double>(data_.size());
  }

  // Nearest-rank percentile, q in [0, 100].
  double Percentile(double q) const {
    if (data_.empty()) return std::numeric_limits<double>::quiet_NaN();
    std::vector<double> sorted = data_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  }

  double Median() const { return Percentile(50.0); }
  const std::vector<double>& data() const noexcept { return data_; }

  // Pools another sample set (e.g. merging per-shard server latencies).
  void Merge(const Samples& other) {
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  }

 private:
  std::vector<double> data_;
};

// Shannon entropy (bits) of a discrete distribution given as counts.
double EntropyBits(const std::vector<double>& weights);

}  // namespace rcloak
