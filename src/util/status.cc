#include "util/status.h"

namespace rcloak {

std::string_view ErrorCodeName(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kDataLoss: return "DATA_LOSS";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace rcloak
