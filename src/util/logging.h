// Minimal leveled stderr logger. Bench binaries silence INFO by default so
// table output stays clean.
#pragma once

#include <sstream>
#include <string>

namespace rcloak {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global threshold; messages below it are dropped. Not thread-safe by
// design (set once at startup).
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

namespace internal {
void Emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) noexcept : level_(level) {}
  ~LogLine() { Emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define RCLOAK_LOG(level) \
  ::rcloak::internal::LogLine(::rcloak::LogLevel::level)

}  // namespace rcloak
