#include "util/interner.h"

#include <cstring>
#include <mutex>

namespace rcloak::util {

UserId StringInterner::FindLocked(std::string_view s,
                                  std::uint64_t hash) const {
  if (slots_.empty()) return kInvalidUserId;
  const std::uint64_t mask = slots_.size() - 1;
  std::size_t index = hash & mask;
  for (;;) {
    const std::uint32_t entry_index = slots_[index];
    if (entry_index == kEmptySlot) return kInvalidUserId;
    const Entry& entry = entries_[entry_index];
    if (entry.hash == hash && entry.length == s.size() &&
        std::memcmp(entry.data, s.data(), s.size()) == 0) {
      return UserId{entry_index};
    }
    index = (index + 1) & mask;
  }
}

UserId StringInterner::Find(std::string_view s) const {
  const std::uint64_t hash = HashBytes(s);
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return FindLocked(s, hash);
}

UserId StringInterner::Intern(std::string_view s) {
  const std::uint64_t hash = HashBytes(s);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const UserId existing = FindLocked(s, hash);
    if (existing.valid()) return existing;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  // Re-probe: another thread may have interned it between the locks.
  const UserId existing = FindLocked(s, hash);
  if (existing.valid()) return existing;
  GrowLocked(entries_.size() + 1);
  const char* stored = StoreLocked(s);
  const UserId id{static_cast<std::uint32_t>(entries_.size())};
  entries_.push_back(
      Entry{stored, static_cast<std::uint32_t>(s.size()), hash});
  const std::uint64_t mask = slots_.size() - 1;
  std::size_t index = hash & mask;
  while (slots_[index] != kEmptySlot) index = (index + 1) & mask;
  slots_[index] = id.value;
  return id;
}

std::string_view StringInterner::NameOf(UserId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  if (!id.valid() || id.value >= entries_.size()) return {};
  const Entry& entry = entries_[id.value];
  return {entry.data, entry.length};
}

std::size_t StringInterner::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return entries_.size();
}

const char* StringInterner::StoreLocked(std::string_view s) {
  const std::size_t need = s.size();
  if (arena_.empty() || arena_used_ + need > kArenaChunk) {
    // Oversized names get a dedicated chunk so the common chunks stay full.
    const std::size_t chunk = need > kArenaChunk ? need : kArenaChunk;
    arena_.push_back(std::make_unique<char[]>(chunk));
    arena_used_ = 0;
  }
  char* dest = arena_.back().get() + arena_used_;
  std::memcpy(dest, s.data(), need);
  arena_used_ += need;
  return dest;
}

void StringInterner::GrowLocked(std::size_t min_entries) {
  if (!slots_.empty() && min_entries * 8 < slots_.size() * 7) return;
  std::size_t new_capacity = slots_.empty() ? 64 : slots_.size();
  while (min_entries * 8 >= new_capacity * 7) new_capacity *= 2;
  slots_.assign(new_capacity, kEmptySlot);
  const std::uint64_t mask = new_capacity - 1;
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    std::size_t index = entries_[i].hash & mask;
    while (slots_[index] != kEmptySlot) index = (index + 1) & mask;
    slots_[index] = i;
  }
}

}  // namespace rcloak::util
