#include "util/interner.h"

#include <cstring>
#include <mutex>

namespace rcloak::util {

UserId StringInterner::FindLocked(std::string_view s,
                                  std::uint64_t hash) const {
  if (slots_.empty()) return kInvalidUserId;
  const std::uint64_t mask = slots_.size() - 1;
  std::size_t index = hash & mask;
  for (;;) {
    const std::uint32_t entry_index = slots_[index];
    if (entry_index == kEmptySlot) return kInvalidUserId;
    const Entry& entry = entries_[entry_index];
    if (entry.data != nullptr && entry.hash == hash &&
        entry.length == s.size() &&
        std::memcmp(entry.data, s.data(), s.size()) == 0) {
      return UserId{entry_index};
    }
    index = (index + 1) & mask;
  }
}

UserId StringInterner::Find(std::string_view s) const {
  const std::uint64_t hash = HashBytes(s);
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return FindLocked(s, hash);
}

UserId StringInterner::Intern(std::string_view s) {
  const std::uint64_t hash = HashBytes(s);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const UserId existing = FindLocked(s, hash);
    if (existing.valid() &&
        entries_[existing.value].generation == current_generation_) {
      return existing;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  // Re-probe: another thread may have interned it between the locks.
  const UserId existing = FindLocked(s, hash);
  if (existing.valid()) {
    // Promote into the current generation so a re-tracked name cannot be
    // swept out from under its new session at the next retirement.
    Entry& entry = entries_[existing.value];
    if (entry.generation != current_generation_) {
      entry.data = StoreLocked({entry.data, entry.length});
      entry.generation = current_generation_;
    }
    return existing;
  }
  std::uint32_t entry_index;
  if (!free_entries_.empty()) {
    entry_index = free_entries_.back();
    free_entries_.pop_back();
  } else {
    entry_index = static_cast<std::uint32_t>(entries_.size());
    entries_.emplace_back();
  }
  GrowLocked(live_count_ + 1);
  const char* stored = StoreLocked(s);
  entries_[entry_index] =
      Entry{stored, static_cast<std::uint32_t>(s.size()), current_generation_,
            hash};
  ++live_count_;
  const std::uint64_t mask = slots_.size() - 1;
  std::size_t index = hash & mask;
  while (slots_[index] != kEmptySlot) index = (index + 1) & mask;
  slots_[index] = entry_index;
  return UserId{entry_index};
}

std::string_view StringInterner::NameOf(UserId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  if (!id.valid() || id.value >= entries_.size()) return {};
  const Entry& entry = entries_[id.value];
  if (entry.data == nullptr) return {};
  return {entry.data, entry.length};
}

std::string StringInterner::NameCopyOf(UserId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  if (!id.valid() || id.value >= entries_.size()) return {};
  const Entry& entry = entries_[id.value];
  if (entry.data == nullptr) return {};
  return std::string(entry.data, entry.length);
}

std::size_t StringInterner::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return live_count_;
}

std::uint32_t StringInterner::BeginGeneration() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  ++current_generation_;
  generations_.push_back(Generation{current_generation_, {}, 0, 0});
  return current_generation_;
}

bool StringInterner::Touch(UserId id) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (!id.valid() || id.value >= entries_.size()) return false;
  Entry& entry = entries_[id.value];
  if (entry.data == nullptr) return false;
  if (entry.generation == current_generation_) return true;
  entry.data = StoreLocked({entry.data, entry.length});
  entry.generation = current_generation_;
  return true;
}

std::size_t StringInterner::RetireGenerationsBefore(std::uint32_t generation) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  std::size_t retired = 0;
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    if (entry.data == nullptr || entry.generation >= generation) continue;
    entry.data = nullptr;
    entry.length = 0;
    free_entries_.push_back(i);
    --live_count_;
    ++retired;
  }
  std::size_t kept = 0;
  for (Generation& gen : generations_) {
    if (gen.number >= generation) {
      generations_[kept++] = std::move(gen);
    } else {
      arena_bytes_ -= gen.bytes;
    }
  }
  generations_.resize(kept);
  if (retired != 0) RebuildSlotsLocked();
  return retired;
}

std::uint32_t StringInterner::generation() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return current_generation_;
}

std::size_t StringInterner::arena_bytes() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return arena_bytes_;
}

std::size_t StringInterner::memory_bytes() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return arena_bytes_ + slots_.capacity() * sizeof(std::uint32_t) +
         entries_.capacity() * sizeof(Entry) +
         free_entries_.capacity() * sizeof(std::uint32_t);
}

const char* StringInterner::StoreLocked(std::string_view s) {
  if (generations_.empty()) {
    generations_.push_back(Generation{current_generation_, {}, 0, 0});
  }
  Generation& gen = generations_.back();
  const std::size_t need = s.size();
  if (gen.chunks.empty() || gen.used + need > kArenaChunk) {
    // Oversized names get a dedicated chunk so the common chunks stay full.
    const std::size_t chunk = need > kArenaChunk ? need : kArenaChunk;
    gen.chunks.push_back(std::make_unique<char[]>(chunk));
    gen.used = 0;
    gen.bytes += chunk;
    arena_bytes_ += chunk;
  }
  char* dest = gen.chunks.back().get() + gen.used;
  std::memcpy(dest, s.data(), need);
  gen.used += need;
  return dest;
}

void StringInterner::GrowLocked(std::size_t min_entries) {
  if (!slots_.empty() && min_entries * 8 < slots_.size() * 7) return;
  std::size_t new_capacity = slots_.empty() ? 64 : slots_.size();
  while (min_entries * 8 >= new_capacity * 7) new_capacity *= 2;
  slots_.assign(new_capacity, kEmptySlot);
  const std::uint64_t mask = new_capacity - 1;
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].data == nullptr) continue;
    std::size_t index = entries_[i].hash & mask;
    while (slots_[index] != kEmptySlot) index = (index + 1) & mask;
    slots_[index] = i;
  }
}

void StringInterner::RebuildSlotsLocked() {
  // Same capacity policy as GrowLocked, but may also shrink the table after
  // a mass retirement.
  std::size_t new_capacity = 64;
  while ((live_count_ + 1) * 8 >= new_capacity * 7) new_capacity *= 2;
  slots_.assign(new_capacity, kEmptySlot);
  const std::uint64_t mask = new_capacity - 1;
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].data == nullptr) continue;
    std::size_t index = entries_[i].hash & mask;
    while (slots_[index] != kEmptySlot) index = (index + 1) & mask;
    slots_[index] = i;
  }
}

}  // namespace rcloak::util
