#include "util/table_writer.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace rcloak {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == header_.size() && "row arity mismatch");
  rows_.push_back(std::move(cells));
}

void TableWriter::PrintMarkdown(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    for (std::size_t i = 0; i < width[c] + 2; ++i) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

namespace {
void EmitCsvCell(std::ostream& os, const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) {
    os << cell;
    return;
  }
  os << '"';
  for (char ch : cell) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}
}  // namespace

void TableWriter::PrintCsv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      EmitCsvCell(os, row[c]);
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
}

std::string TableWriter::Fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TableWriter::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

}  // namespace rcloak
